"""Initialization results and the legacy method drivers.

:class:`InitializationResult` is the uniform outcome of *any* registered
initialization method (see :mod:`repro.methods`): the best genome and
loss, full engine bookkeeping, and the decoded VQE starting point -- the
Hamiltonian the subsequent VQE should optimize, the starting parameters,
and the initial-state circuit/observable on the evaluation register.

``clapton()``, ``cafqa()``, and ``ncafqa()`` remain as thin wrappers over
the registered method instances in :mod:`repro.methods.builtin`; they
produce bit-identical numbers to the historical in-place drivers for
identical seeds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # annotation only; repro.search imports stay one-way
    from ..search.base import SearchResult

from ..circuits.circuit import Circuit
from ..noise.clifford_model import CliffordNoiseModel
from ..optim.engine import EngineConfig, EngineResult
from ..paulis.pauli_sum import PauliSum
from .problem import VQEProblem
from .transformation import embed_table


@dataclass
class InitializationResult:
    """Outcome of one initialization method on one problem.

    Attributes:
        method: Registered method name (``"clapton"``, ``"cafqa"``,
            ``"ncafqa"``, ``"random_clifford"``, ``"vanilla"``, or any
            user-registered name).
        problem: The problem bundle the method ran on.
        genome: Best genome found (``gamma`` for Clapton, Clifford rotation
            levels for the ansatz-angle methods).
        loss: Best engine loss (the method's own cost, not a device energy).
        engine: Full engine bookkeeping (rounds, timings, evaluation count).
        vqe_hamiltonian: The *logical* Hamiltonian the post-method VQE
            optimizes -- transformed for Clapton, original otherwise.
        initial_theta: VQE starting parameters (zeros for Clapton,
            ``genome * pi/2`` for the ansatz-angle methods).
        init_circuit: Optional explicit initial-state circuit (methods
            whose initial state is not the bound ansatz); ``None`` means
            ``A'(initial_theta)``.
        search: The :class:`~repro.search.SearchResult` that produced the
            genome (strategy name + per-round trace); ``None`` for
            methods whose overridden search returns bare engine
            bookkeeping.
        mitigation: Canonical name of the mitigation strategy requested
            for this run's noisy evaluations (``repro mitigations``);
            ``"none"`` -- the default -- leaves every estimate raw.
            Recorded here so downstream evaluation surfaces
            (``evaluate_initial_point``, ``run_vqe``) pick it up without
            re-threading the axis.
    """

    method: str
    problem: VQEProblem
    genome: np.ndarray
    loss: float
    engine: EngineResult
    vqe_hamiltonian: PauliSum
    initial_theta: np.ndarray
    init_circuit: Circuit | None = None
    search: "SearchResult | None" = None
    mitigation: str = "none"

    # ------------------------------------------------------------------
    # The initial point, as evaluated on the device register
    # ------------------------------------------------------------------
    def initial_circuit(self) -> Circuit:
        """Bound Clifford circuit preparing the initial state on hardware.

        The bound, identity-free ansatz at ``initial_theta`` -- for
        Clapton (``theta = 0``) that is exactly the skeleton ``A'(0)`` --
        unless the method supplied an explicit ``init_circuit``.
        """
        if self.init_circuit is not None:
            return self.init_circuit
        return self.problem.bound_ansatz(self.initial_theta)

    def initial_observable(self) -> PauliSum:
        """The measured Hamiltonian on the evaluation register.

        ``vqe_hamiltonian`` re-indexed onto the device register: the
        transformed problem for Clapton, the plain mapped Hamiltonian for
        the ansatz-angle methods -- one rule for every method.
        """
        problem = self.problem
        table = embed_table(self.vqe_hamiltonian.table, problem.positions,
                            problem.num_eval_qubits)
        return PauliSum(table, self.vqe_hamiltonian.coefficients.copy())


def clapton(problem: VQEProblem, config: EngineConfig | None = None,
            clifford_model: CliffordNoiseModel | None = None,
            noisy_weight: float = 1.0, noiseless_weight: float = 1.0,
            executor=None) -> InitializationResult:
    """Run the Clapton transformation search (Sec. 4.1).

    Args:
        problem: Problem bundle (transpiled or logical).
        config: Engine hyperparameters; defaults to the paper's
            s=10 / m=100 / k=20 / |S|=100 working point.
        clifford_model: Override the L_N noise projection (ablations).
        noisy_weight / noiseless_weight: Cost-term weights (ablations).
        executor: Execution backend for the engine's GA rounds (any
            :mod:`repro.execution` executor); serial by default.
    """
    from ..methods.builtin import ClaptonMethod

    method = ClaptonMethod(clifford_model=clifford_model,
                           noisy_weight=noisy_weight,
                           noiseless_weight=noiseless_weight)
    return method.run(problem, config=config, executor=executor)


def cafqa(problem: VQEProblem, config: EngineConfig | None = None,
          executor=None) -> InitializationResult:
    """The CAFQA baseline: noiseless Clifford search over ansatz angles."""
    from ..methods.builtin import CafqaMethod

    return CafqaMethod().run(problem, config=config, executor=executor)


def ncafqa(problem: VQEProblem, config: EngineConfig | None = None,
           clifford_model: CliffordNoiseModel | None = None,
           executor=None) -> InitializationResult:
    """Noise-aware CAFQA: the paper's strengthened baseline (Sec. 5.2)."""
    from ..methods.builtin import NcafqaMethod

    return NcafqaMethod(clifford_model=clifford_model).run(
        problem, config=config, executor=executor)
