"""End-to-end drivers: ``clapton()``, ``cafqa()``, ``ncafqa()``.

Each driver runs the Figure-4 multi-GA engine on the method's cost function
and returns an :class:`InitializationResult` exposing, uniformly across
methods, everything the evaluation needs: the initial-point circuit and
observable on the evaluation register, the Hamiltonian the subsequent VQE
should optimize, and the VQE starting parameters.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..circuits.ansatz import cafqa_angles
from ..circuits.circuit import Circuit
from ..noise.clifford_model import CliffordNoiseModel
from ..optim.engine import EngineConfig, EngineResult, multi_ga_minimize
from ..paulis.pauli_sum import PauliSum
from .loss import CafqaLoss, ClaptonLoss
from .problem import VQEProblem
from .transformation import embed_table, transform_hamiltonian, transform_table


@dataclass
class InitializationResult:
    """Outcome of one initialization method on one problem.

    Attributes:
        method: ``"clapton"``, ``"cafqa"``, or ``"ncafqa"``.
        problem: The problem bundle the method ran on.
        genome: Best genome found (``gamma`` for Clapton, Clifford rotation
            levels for the baselines).
        loss: Best engine loss (the method's own cost, not a device energy).
        engine: Full engine bookkeeping (rounds, timings, evaluation count).
        vqe_hamiltonian: The *logical* Hamiltonian the post-method VQE
            optimizes -- transformed for Clapton, original otherwise.
        initial_theta: VQE starting parameters (zeros for Clapton,
            ``genome * pi/2`` for CAFQA/nCAFQA).
    """

    method: str
    problem: VQEProblem
    genome: np.ndarray
    loss: float
    engine: EngineResult
    vqe_hamiltonian: PauliSum
    initial_theta: np.ndarray

    # ------------------------------------------------------------------
    # The initial point, as evaluated on the device register
    # ------------------------------------------------------------------
    def initial_circuit(self) -> Circuit:
        """Bound Clifford circuit preparing the initial state on hardware."""
        if self.method == "clapton":
            return self.problem.skeleton()
        return self.problem.bound_ansatz(self.initial_theta)

    def initial_observable(self) -> PauliSum:
        """The measured Hamiltonian on the evaluation register."""
        problem = self.problem
        if self.method == "clapton":
            table = transform_table(problem.hamiltonian, self.genome,
                                    problem.entanglement)
            eval_table = embed_table(table, problem.positions,
                                     problem.num_eval_qubits)
            return PauliSum(eval_table, problem.hamiltonian.coefficients.copy())
        return problem.mapped_hamiltonian()


def clapton(problem: VQEProblem, config: EngineConfig | None = None,
            clifford_model: CliffordNoiseModel | None = None,
            noisy_weight: float = 1.0, noiseless_weight: float = 1.0,
            executor=None) -> InitializationResult:
    """Run the Clapton transformation search (Sec. 4.1).

    Args:
        problem: Problem bundle (transpiled or logical).
        config: Engine hyperparameters; defaults to the paper's
            s=10 / m=100 / k=20 / |S|=100 working point.
        clifford_model: Override the L_N noise projection (ablations).
        noisy_weight / noiseless_weight: Cost-term weights (ablations).
        executor: Execution backend for the engine's GA rounds (any
            :mod:`repro.execution` executor); serial by default.
    """
    loss = ClaptonLoss(problem, clifford_model=clifford_model,
                       noisy_weight=noisy_weight,
                       noiseless_weight=noiseless_weight)
    engine = multi_ga_minimize(loss, problem.num_transformation_parameters,
                               num_values=4, config=config,
                               executor=executor)
    gamma = engine.best_genome
    return InitializationResult(
        method="clapton",
        problem=problem,
        genome=gamma,
        loss=engine.best_loss,
        engine=engine,
        vqe_hamiltonian=transform_hamiltonian(problem.hamiltonian, gamma,
                                              problem.entanglement),
        initial_theta=np.zeros(problem.num_vqe_parameters),
    )


def _cafqa_like(problem: VQEProblem, noise_aware: bool,
                config: EngineConfig | None,
                clifford_model: CliffordNoiseModel | None,
                executor=None) -> InitializationResult:
    loss = CafqaLoss(problem, noise_aware=noise_aware,
                     clifford_model=clifford_model)
    engine = multi_ga_minimize(loss, problem.num_vqe_parameters,
                               num_values=4, config=config,
                               executor=executor)
    genome = engine.best_genome
    return InitializationResult(
        method="ncafqa" if noise_aware else "cafqa",
        problem=problem,
        genome=genome,
        loss=engine.best_loss,
        engine=engine,
        vqe_hamiltonian=problem.hamiltonian,
        initial_theta=cafqa_angles(genome),
    )


def cafqa(problem: VQEProblem, config: EngineConfig | None = None,
          executor=None) -> InitializationResult:
    """The CAFQA baseline: noiseless Clifford search over ansatz angles."""
    return _cafqa_like(problem, noise_aware=False, config=config,
                       clifford_model=None, executor=executor)


def ncafqa(problem: VQEProblem, config: EngineConfig | None = None,
           clifford_model: CliffordNoiseModel | None = None,
           executor=None) -> InitializationResult:
    """Noise-aware CAFQA: the paper's strengthened baseline (Sec. 5.2)."""
    return _cafqa_like(problem, noise_aware=True, config=config,
                       clifford_model=clifford_model, executor=executor)
