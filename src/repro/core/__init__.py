"""Clapton core: problem transformation, losses, drivers, evaluation."""

from .transformation import (
    embed_table,
    transform_hamiltonian,
    transform_table,
    transform_table_many,
    transformation_tableau,
    untransform_state_circuit,
)
from .problem import VQEProblem
from .loss import CafqaLoss, ClaptonLoss, NcafqaLoss
from .clapton import InitializationResult, cafqa, clapton, ncafqa
from .evaluation import PointEvaluation, evaluate_initial_point

__all__ = [
    "CafqaLoss", "ClaptonLoss", "InitializationResult", "NcafqaLoss",
    "PointEvaluation", "VQEProblem", "cafqa", "clapton", "embed_table",
    "evaluate_initial_point", "ncafqa", "transform_hamiltonian",
    "transform_table", "transform_table_many", "transformation_tableau",
    "untransform_state_circuit",
]
