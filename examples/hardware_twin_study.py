"""Hardware twins: do model-optimized transformations survive a real device?

The paper's hanoi experiments (Sec. 6.1) optimize against a calibration-
derived noise model but report energies from the physical machine, whose
behaviour has drifted and contains effects no calibration captures.  This
example reproduces the setup: optimization sees ``FakeHanoi()``'s model; the
reported energies come from a *hardware twin* with recalibrated (jittered)
rates plus a coherent ZZ over-rotation the model knows nothing about.

Run:  python examples/hardware_twin_study.py
"""

from repro import (
    FakeHanoi,
    VQEProblem,
    cafqa,
    clapton,
    evaluate_initial_point,
    ground_state_energy,
    ncafqa,
    relative_improvement,
    xxz_model,
)
from repro.experiments import SMOKE_ENGINE


def main() -> None:
    hamiltonian = xxz_model(6, coupling=0.25)
    e0 = ground_state_energy(hamiltonian)
    backend = FakeHanoi()
    twin = backend.hardware_twin(seed=2024)
    problem = VQEProblem.from_backend(hamiltonian, backend, hardware=twin)
    print(f"6-qubit XXZ (J=0.25) on {backend.name} + hardware twin; "
          f"E0 = {e0:.4f}\n")

    evaluations = {}
    for name, driver in [("cafqa", cafqa), ("ncafqa", ncafqa),
                         ("clapton", clapton)]:
        result = driver(problem, config=SMOKE_ENGINE)
        evaluations[name] = evaluate_initial_point(result)

    print(f"{'method':<10} {'model':>10} {'hardware':>10} {'drift':>8}")
    for name, ev in evaluations.items():
        drift = ev.hardware - ev.device_model
        print(f"{name:<10} {ev.device_model:>10.4f} {ev.hardware:>10.4f} "
              f"{drift:>8.4f}")

    for baseline in ("cafqa", "ncafqa"):
        eta_hw = relative_improvement(e0, evaluations[baseline].hardware,
                                      evaluations["clapton"].hardware)
        print(f"\neta on *hardware* vs {baseline}: {eta_hw:.2f}x "
              "(the improvement that matters: it survived the model-device "
              "discrepancy)" if baseline == "ncafqa" else
              f"\neta on *hardware* vs {baseline}: {eta_hw:.2f}x")


if __name__ == "__main__":
    main()
