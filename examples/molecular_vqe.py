"""Chemistry workload: LiH ground-state estimation with Clapton.

The paper's chemistry benchmarks profit most from the transformation because
their Hamiltonians have hundreds of Pauli terms (Sec. 6.1).  This example
builds LiH at 1.5 angstrom through the package's own ab-initio pipeline
(STO-3G integrals -> RHF -> active space -> parity mapping, 10 qubits,
631 terms), transpiles onto the toronto model, and compares Clapton against
noise-aware CAFQA.

Run:  python examples/molecular_vqe.py   (takes a few minutes)
"""

from repro import (
    FakeToronto,
    VQEProblem,
    clapton,
    evaluate_initial_point,
    ground_state_energy,
    ncafqa,
    relative_improvement,
)
from repro.chem import molecular_hamiltonian
from repro.experiments import SMOKE_ENGINE


def main() -> None:
    print("building LiH (l = 1.5 A) via STO-3G integrals + RHF + parity mapping...")
    molecule = molecular_hamiltonian("LiH", 1.5)
    hamiltonian = molecule.hamiltonian
    e0 = ground_state_energy(hamiltonian)
    print(f"  {hamiltonian.num_qubits} qubits, {hamiltonian.num_terms} Pauli terms")
    print(f"  RHF energy    = {molecule.hf_energy:.6f} Ha")
    print(f"  FCI energy E0 = {e0:.6f} Ha "
          f"(correlation {e0 - molecule.hf_energy:.6f} Ha)")

    backend = FakeToronto()
    problem = VQEProblem.from_backend(hamiltonian, backend)
    print(f"\ntranspiled onto {backend.name}: physical qubits "
          f"{problem.transpiled.physical_qubits}")

    print("optimizing initializations (reduced engine budget)...")
    base = ncafqa(problem, config=SMOKE_ENGINE)
    clap = clapton(problem, config=SMOKE_ENGINE)

    ev_base = evaluate_initial_point(base)
    ev_clap = evaluate_initial_point(clap)
    print(f"\n{'method':<10} {'noise-free':>12} {'clifford':>10} {'device':>10}")
    print(f"{'ncafqa':<10} {ev_base.noiseless:>12.4f} "
          f"{ev_base.clifford_model:>10.4f} {ev_base.device_model:>10.4f}")
    print(f"{'clapton':<10} {ev_clap.noiseless:>12.4f} "
          f"{ev_clap.clifford_model:>10.4f} {ev_clap.device_model:>10.4f}")

    eta = relative_improvement(e0, ev_base.device_model, ev_clap.device_model)
    print(f"\neta (Clapton vs nCAFQA, device model) = {eta:.2f}x")
    print(f"model-vs-device gap: ncafqa {ev_base.model_gap():.4f} Ha, "
          f"clapton {ev_clap.model_gap():.4f} Ha "
          f"(Clapton's Clifford model should be the more faithful one)")


if __name__ == "__main__":
    main()
