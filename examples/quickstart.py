"""Quickstart: mitigate device noise on a small Ising VQE with Clapton.

Runs the full pipeline on a 5-qubit transverse-field Ising chain against the
7-qubit nairobi device model through the ``Experiment`` façade: transpile,
search for the Clifford problem transformation, and compare the
initial-point quality against the CAFQA baseline under three noise tiers.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import Experiment, FakeNairobi, ising_model
from repro.experiments import SMOKE_ENGINE


def main() -> None:
    hamiltonian = ising_model(5, coupling=1.0)
    backend = FakeNairobi()
    experiment = Experiment(hamiltonian, backend=backend, name="ising5")
    problem = experiment.problem
    print(f"5-qubit Ising chain (J=1.0) transpiled onto {backend.name}: "
          f"physical qubits {problem.transpiled.physical_qubits}, "
          f"{problem.transpiled.num_swaps} routing SWAPs")

    print("\nsearching initializations (reduced engine budget)...")
    result = experiment.run(methods=("cafqa", "clapton"),
                            config=SMOKE_ENGINE)
    print(f"exact ground energy E0 = {result.e0:.4f}")

    print(f"\n{'method':<10} {'noise-free':>11} {'clifford':>10} {'device':>10}")
    for name, run in result.runs.items():
        ev = run.evaluation
        print(f"{name:<10} {ev.noiseless:>11.4f} {ev.clifford_model:>10.4f} "
              f"{ev.device_model:>10.4f}")

    eta = result.eta_initial("cafqa")
    print(f"\nrelative improvement (eta, Eq. 14) of Clapton over CAFQA "
          f"under device-model evaluation: {eta:.2f}x")

    clapton_result = result.results["clapton"]
    gamma = clapton_result.genome
    print(f"\nClapton transformation genome gamma = {np.array2string(gamma)}")
    transformed = clapton_result.vqe_hamiltonian
    print(f"transformed Hamiltonian: {transformed.num_terms} terms, "
          f"<0|H^|0> = {transformed.expectation_all_zeros():.4f} "
          f"(original <0|H|0> = {hamiltonian.expectation_all_zeros():.4f})")


if __name__ == "__main__":
    main()
