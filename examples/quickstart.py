"""Quickstart: mitigate device noise on a small Ising VQE with Clapton.

Runs the full pipeline on a 5-qubit transverse-field Ising chain against the
7-qubit nairobi device model: transpile, search for the Clifford problem
transformation, and compare the initial-point quality against the CAFQA
baseline under three noise tiers.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    FakeNairobi,
    VQEProblem,
    cafqa,
    clapton,
    evaluate_initial_point,
    ground_state_energy,
    ising_model,
    relative_improvement,
)
from repro.experiments import SMOKE_ENGINE


def main() -> None:
    hamiltonian = ising_model(5, coupling=1.0)
    e0 = ground_state_energy(hamiltonian)
    print(f"5-qubit Ising chain (J=1.0), exact ground energy E0 = {e0:.4f}")

    backend = FakeNairobi()
    problem = VQEProblem.from_backend(hamiltonian, backend)
    print(f"transpiled onto {backend.name}: physical qubits "
          f"{problem.transpiled.physical_qubits}, "
          f"{problem.transpiled.num_swaps} routing SWAPs")

    print("\nsearching initializations (reduced engine budget)...")
    results = {
        "cafqa": cafqa(problem, config=SMOKE_ENGINE),
        "clapton": clapton(problem, config=SMOKE_ENGINE),
    }

    print(f"\n{'method':<10} {'noise-free':>11} {'clifford':>10} {'device':>10}")
    evaluations = {}
    for name, result in results.items():
        ev = evaluate_initial_point(result)
        evaluations[name] = ev
        print(f"{name:<10} {ev.noiseless:>11.4f} {ev.clifford_model:>10.4f} "
              f"{ev.device_model:>10.4f}")

    eta = relative_improvement(e0, evaluations["cafqa"].device_model,
                               evaluations["clapton"].device_model)
    print(f"\nrelative improvement (eta, Eq. 14) of Clapton over CAFQA "
          f"under device-model evaluation: {eta:.2f}x")

    gamma = results["clapton"].genome
    print(f"\nClapton transformation genome gamma = {np.array2string(gamma)}")
    transformed = results["clapton"].vqe_hamiltonian
    print(f"transformed Hamiltonian: {transformed.num_terms} terms, "
          f"<0|H^|0> = {transformed.expectation_all_zeros():.4f} "
          f"(original <0|H|0> = {hamiltonian.expectation_all_zeros():.4f})")


if __name__ == "__main__":
    main()
