"""MaxCut: Clapton beyond chemistry and spin physics.

The paper notes Clapton applies to any VQA (Sec. 2.4); this example runs it
on a weighted MaxCut instance.  Diagonal cost Hamiltonians are a best case:
their ground states are computational-basis states, so a good Clifford
transformation can map the optimal cut exactly onto |0...0> -- noiseless
optimality plus maximal noise robustness at once.

Run:  python examples/maxcut_optimization.py
"""

import numpy as np

from repro import NoiseModel, VQEProblem, cafqa, clapton, evaluate_initial_point
from repro.core import ClaptonLoss
from repro.experiments import SMOKE_ENGINE
from repro.hamiltonians import (
    best_cut_bruteforce,
    ground_state_energy,
    maxcut_hamiltonian,
    random_maxcut_instance,
)


def main() -> None:
    rng = np.random.default_rng(11)
    graph = random_maxcut_instance(6, 0.5, rng, weighted=True)
    hamiltonian = maxcut_hamiltonian(graph)
    best_cut = best_cut_bruteforce(graph)
    e0 = ground_state_energy(hamiltonian)
    print(f"random weighted MaxCut on 6 nodes, {graph.number_of_edges()} edges")
    print(f"optimal cut weight (brute force) = {best_cut:.4f}; "
          f"E0 = {e0:.4f} (= -cut)")

    noise = NoiseModel.uniform(6, depol_1q=1e-3, depol_2q=1e-2,
                               readout=0.03, t1=80e-6)
    problem = VQEProblem.logical(hamiltonian, noise_model=noise)

    base = cafqa(problem, config=SMOKE_ENGINE)
    clap = clapton(problem, config=SMOKE_ENGINE)
    ev_base = evaluate_initial_point(base)
    ev_clap = evaluate_initial_point(clap)

    print(f"\n{'method':<9} {'noise-free':>11} {'device':>9}")
    print(f"{'cafqa':<9} {ev_base.noiseless:>11.4f} {ev_base.device_model:>9.4f}")
    print(f"{'clapton':<9} {ev_clap.noiseless:>11.4f} {ev_clap.device_model:>9.4f}")

    _, l0 = ClaptonLoss(problem).components(clap.genome)
    print(f"\nClapton's transformed problem puts the optimal cut on |0...0>: "
          f"L0 = {l0:.4f} vs E0 = {e0:.4f}")
    approx = ev_clap.device_model / e0
    print(f"device-model approximation ratio of the Clapton point: {approx:.3f}")


if __name__ == "__main__":
    main()
