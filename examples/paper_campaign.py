"""Reproduce a small Figure-4/5-style grid as a resumable campaign.

Declares a campaign over two physics benchmarks x three noise scales x
two methods x two seeds (24 tasks), runs it through the campaign
subsystem with per-task checkpointing, then prints the aggregated
figure tables -- per-benchmark three-tier energies and the Eq. 14
relative-improvement sweep -- exactly as ``repro sweep`` + ``repro
report`` would.

The store lands in a temporary directory here; point it at a real path
(or use the CLI) to keep a campaign across crashes and sessions:

    repro sweep grid.json --jobs 4      # interrupt it freely...
    repro sweep grid.json --resume      # ...finish the remainder
    repro report grid.campaign

Run:  python examples/paper_campaign.py
"""

import tempfile
from pathlib import Path

from repro import CampaignRunner, CampaignSpec, ResultStore, render_report
from repro.campaigns import CampaignAggregate

SPEC = CampaignSpec(
    name="fig4-small",
    benchmarks=["ising_J1.00", "xxz_J0.50"],
    qubit_sizes=[4],
    noise_scales=[0.5, 1.0, 2.0],
    methods=["ncafqa", "clapton"],
    seeds=[0, 1],
    engine_preset="smoke",
    vqe_iterations=0,
)


def main() -> None:
    print(f"campaign {SPEC.name!r}: {SPEC.num_tasks} tasks "
          f"({len(SPEC.benchmarks)} benchmarks x "
          f"{len(SPEC.noise_scales)} noise scales x "
          f"{len(SPEC.methods)} methods x {len(SPEC.seeds)} seeds)")
    with tempfile.TemporaryDirectory() as tmp:
        store = ResultStore.create(Path(tmp) / "fig4.campaign", SPEC)
        progress = CampaignRunner(SPEC, store).run(
            on_record=lambda r: print(
                f"  {r['task']['benchmark']}"
                f"/{r['task']['setting'].get('scale', '-')}"
                f"/{r['task']['method']}/s{r['task']['seed']}: "
                f"{r['status']} ({r['seconds']:.1f}s)"))
        print(f"\n{progress.ran} tasks in {progress.seconds:.1f}s, "
              f"{progress.failed} failed\n")

        # reopen from disk, as `repro report` would after a crash
        reopened = ResultStore.open(store.path)
        print(render_report(reopened))

        aggregate = CampaignAggregate.from_store(reopened)
        print("eta(clapton vs ncafqa) per noise scale "
              "(geomean over seeds):")
        for entry in aggregate.eta_summary("ncafqa"):
            print(f"  {entry['benchmark']:<12} {entry['setting']:<10} "
                  f"{entry['eta_geomean']:.2f}")


if __name__ == "__main__":
    main()
