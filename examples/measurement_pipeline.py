"""The full experimental measurement pipeline, end to end.

Shows the counts-based flow a real device requires -- qubit-wise-commuting
measurement grouping, noisy basis rotations, bitstring sampling through the
asymmetric readout confusion -- and how tensored readout mitigation and
zero-noise extrapolation compose with a Clapton initialization.

Run:  python examples/measurement_pipeline.py
"""

import numpy as np

from repro import (
    NoiseModel,
    VQEProblem,
    clapton,
    ground_state_energy,
    make_estimator,
    xxz_model,
)
from repro.experiments import SMOKE_ENGINE
from repro.mitigation import zne_energy
from repro.vqe import num_measurement_bases


def main() -> None:
    hamiltonian = xxz_model(5, 1.0)
    e0 = ground_state_energy(hamiltonian)
    noise = NoiseModel(
        num_qubits=5, depol_1q=8e-4, depol_2q_default=8e-3,
        readout_p01=np.full(5, 0.015), readout_p10=np.full(5, 0.035),
        t1=np.full(5, 90e-6))
    problem = VQEProblem.logical(hamiltonian, noise_model=noise)
    print(f"5-qubit XXZ (J=1.0), E0 = {e0:.4f}")
    print(f"measurement bases needed per energy estimate: "
          f"{num_measurement_bases(hamiltonian)} "
          f"(for {hamiltonian.num_terms} Pauli terms)")

    result = clapton(problem, config=SMOKE_ENGINE)
    observable = result.initial_observable()
    theta = result.initial_theta

    exact = make_estimator(problem, observable, mode="exact")
    reference = exact.estimate(theta)
    print(f"\nexact noisy energy of the Clapton initial point: "
          f"{reference.value:.4f} ({reference.seconds * 1e3:.1f} ms)")

    for shots in (512, 4096, 32768):
        raw = make_estimator(problem, observable, mode="shots",
                             shots=shots, seed=1)
        mitigated = make_estimator(problem, observable, mode="shots",
                                   shots=shots, seed=1,
                                   readout_mitigation=True)
        print(f"shots={shots:>6}: sampled {raw.energy(theta):8.4f}   "
              f"readout-mitigated {mitigated.energy(theta):8.4f}")

    zne = zne_energy(result.initial_circuit(), observable, noise,
                     scales=(1, 3, 5), method="exponential")
    print(f"\nzero-noise extrapolation on top: {zne.unmitigated:.4f} -> "
          f"{zne.mitigated:.4f} (scale curve: "
          + ", ".join(f"{v:.4f}" for v in zne.values) + ")")
    from repro.stabilizer import clifford_state_expectation

    print(f"noiseless stabilizer evaluation: "
          f"{clifford_state_expectation(result.initial_circuit(), observable):.4f}")


if __name__ == "__main__":
    main()
