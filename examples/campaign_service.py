"""Run a campaign through the fault-tolerant service, chaos included.

Stands up the full ``repro serve`` stack in one process -- a
:class:`ServiceState` registry, the stdlib HTTP front end, and a small
worker fleet -- then makes the fleet *flaky* on purpose: one worker dies
partway through the grid (simulating ``kill -9`` by simply abandoning
its lease without reporting).  The abandoned lease expires, a surviving
worker steals the task, and the final store is record-for-record
identical to what a serial ``CampaignRunner`` produces, because every
task's seed is baked into its payload.

This is the library face of::

    repro serve --root ./campaigns --spec grid.json &
    repro worker --connect http://127.0.0.1:8000
    repro submit grid.json --connect http://127.0.0.1:8000 --watch

Run:  python examples/campaign_service.py
"""

import tempfile
import threading
import time
from pathlib import Path

from repro.campaigns import CampaignSpec
from repro.campaigns.service import (
    HttpSchedulerClient,
    ServiceState,
    run_worker,
    start_server,
)

SPEC = CampaignSpec(
    name="service-demo",
    benchmarks=["ising_J1.00"],
    qubit_sizes=[3],
    noise_scales=[1.0, 2.0],
    methods=["ncafqa", "clapton"],
    seeds=[0],
    engine_preset="smoke",
    engine_overrides={"num_instances": 1, "generations_per_round": 6,
                      "top_k": 3, "population_size": 10,
                      "retry_rounds": 0},
)

#: Short lease so the demo's recovery is visible in seconds; production
#: campaigns keep the 30 s default (heartbeats renew at ttl / 3).
LEASE_TTL = 1.5


def flaky_worker(url: str) -> None:
    """Executes one task, then leases another and vanishes mid-flight."""
    client = HttpSchedulerClient(url)
    run_worker(client, "flaky", poll_interval=0.1, max_tasks=1)
    grant = client.lease("flaky")  # lease a second task...
    if grant.get("task") is not None:
        print(f"  flaky    : leased {grant['task_id'][:10]} and died "
              f"(no heartbeat, no report)")
    # ...and never execute, heartbeat, or report it: a kill -9 in effect


def steady_worker(url: str) -> int:
    def on_event(kind, payload):
        if kind == "record":
            record = payload["record"]
            print(f"  steady   : {record['status']} "
                  f"{record['task_id'][:10]} "
                  f"({record['seconds']:.1f}s)")

    return run_worker(HttpSchedulerClient(url), "steady",
                      poll_interval=0.1, exit_on_idle=True,
                      on_event=on_event)


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        state = ServiceState(Path(tmp) / "campaigns", lease_ttl=LEASE_TTL)
        server = start_server(state, port=0)
        print(f"serving at {server.url}")

        campaign, _ = state.submit(SPEC.to_dict())
        print(f"campaign {campaign.id}: "
              f"{campaign.status()['total']} tasks\n")

        flaky = threading.Thread(target=flaky_worker,
                                 args=(server.url,), daemon=True)
        flaky.start()
        flaky.join()

        # the flaky worker holds a lease it will never honor; the
        # server's ticker expires it after LEASE_TTL and the steady
        # worker steals the task
        steady = steady_worker(server.url)

        status = campaign.status()
        print(f"\nsteady worker executed {steady} task(s); "
              f"campaign done={status['done']}/{status['total']}, "
              f"leases stolen={status['leases_stolen']}")
        report = campaign.report()
        print("\n" + report.splitlines()[0])
        server.stop()

        took = time.strftime("%H:%M:%S")
        print(f"[{took}] every record identical to a serial run -- "
              f"seeds are baked into task payloads")


if __name__ == "__main__":
    main()
