"""Physics workload: full three-method comparison with VQE convergence.

Reproduces, in miniature, the paper's main evaluation loop (Sec. 6.1) on a
6-qubit XXZ chain: run CAFQA, noise-aware CAFQA, and Clapton, evaluate the
initial points under all noise tiers, then run SPSA-driven VQE from each
initialization and report final points and relative improvements.

Run:  python examples/ising_error_mitigation.py
"""

from repro import Experiment, FakeNairobi, xxz_model
from repro.experiments import SMOKE_ENGINE
from repro.metrics import gap_reduction_percent


def main() -> None:
    hamiltonian = xxz_model(6, coupling=0.5)
    backend = FakeNairobi()
    experiment = Experiment(hamiltonian, backend=backend, name="xxz_J0.50")
    print(f"6-qubit XXZ (J=0.5) on {backend.name}")
    print("running cafqa / ncafqa / clapton + 40 VQE iterations each...\n")
    row = experiment.run(config=SMOKE_ENGINE, vqe_iterations=40)
    print(f"E0 = {row.e0:.4f}")

    header = (f"{'method':<10} {'init noise-free':>16} {'init device':>12} "
              f"{'final device':>13}")
    print(header)
    for method in ("cafqa", "ncafqa", "clapton"):
        ev = row.runs[method].evaluation
        trace = row.runs[method].vqe
        print(f"{method:<10} {ev.noiseless:>16.4f} {ev.device_model:>12.4f} "
              f"{trace.final_energy:>13.4f}")

    print()
    for baseline in ("cafqa", "ncafqa"):
        eta_i = row.eta_initial(baseline)
        eta_f = row.eta_final(baseline)
        print(f"vs {baseline:<7}: eta(initial) = {eta_i:.2f} "
              f"({gap_reduction_percent(max(eta_i, 1e-9)):.0f}% gap reduction), "
              f"eta(final) = {eta_f:.2f}")

    print("\nVQE convergence (device-model loss estimates, every 8th iter):")
    for method in ("cafqa", "ncafqa", "clapton"):
        samples = row.runs[method].vqe.history[::8]
        rendered = " ".join(f"{v:7.3f}" for v in samples)
        print(f"  {method:<8} {rendered}")


if __name__ == "__main__":
    main()
