"""Isolated noise channels: how does eta scale with each error source?

A miniature of the paper's Sec. 6.2 sweeps (Figs. 7/8): fix a benchmark,
sweep one channel's strength with thermal relaxation held at a chosen T1,
and report Clapton's relative improvement over noise-aware CAFQA at the
initial VQE point.

Run:  python examples/noise_channel_study.py
"""

import numpy as np

from repro import NoiseModel, ground_state_energy, ising_model
from repro.experiments import SMOKE_ENGINE, sweep_relative_improvement


def main() -> None:
    hamiltonian = ising_model(5, coupling=1.0)
    e0 = ground_state_energy(hamiltonian)
    print(f"5-qubit Ising (J=1.0), E0 = {e0:.4f}")
    t1 = 100e-6

    gate_errors = [5e-4, 2e-3, 5e-3]
    models = [NoiseModel.uniform(5, depol_1q=p, depol_2q=10 * p,
                                 readout=0.02, t1=t1)
              for p in gate_errors]
    print(f"\ngate-error sweep (2q error = 10p, T1 = {t1 * 1e6:.0f} us, "
          "readout 2%):")
    etas = sweep_relative_improvement(hamiltonian, models,
                                      config=SMOKE_ENGINE)
    for p, eta in zip(gate_errors, etas):
        print(f"  p = {p:.0e}:  eta vs ncafqa = {eta:.2f}")

    meas_errors = [5e-3, 3e-2, 9e-2]
    models = [NoiseModel.uniform(5, depol_1q=5e-4, depol_2q=5e-3,
                                 readout=p, t1=t1)
              for p in meas_errors]
    print("\nmeasurement-error sweep (gate errors fixed at 5e-4 / 5e-3):")
    etas = sweep_relative_improvement(hamiltonian, models,
                                      config=SMOKE_ENGINE)
    for p, eta in zip(meas_errors, etas):
        print(f"  p = {p:.0e}:  eta vs ncafqa = {eta:.2f}")


if __name__ == "__main__":
    main()
