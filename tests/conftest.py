"""Shared pytest configuration: register the `slow` marker."""


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "slow: chemistry-pipeline tests that take a few seconds")
