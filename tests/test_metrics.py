"""Tests for the evaluation metrics (Eq. 14 and Fig. 5 normalization)."""

import math

import numpy as np
import pytest

from repro.metrics import (
    gap_reduction_percent,
    geometric_mean,
    normalized_energy,
    relative_improvement,
)


class TestRelativeImprovement:
    def test_factor_two_halves_gap(self):
        assert relative_improvement(-10.0, -8.0, -9.0) == pytest.approx(2.0)

    def test_equal_methods_give_one(self):
        assert relative_improvement(-5.0, -4.0, -4.0) == pytest.approx(1.0)

    def test_below_one_when_baseline_better(self):
        assert relative_improvement(-10.0, -9.5, -9.0) == pytest.approx(0.5)

    def test_exact_clapton_gives_inf(self):
        assert relative_improvement(-3.0, -2.0, -3.0) == math.inf

    def test_both_exact_gives_one(self):
        assert relative_improvement(-3.0, -3.0, -3.0) == 1.0

    def test_unphysical_energies_rejected(self):
        with pytest.raises(ValueError):
            relative_improvement(-3.0, -4.0, -2.0)


class TestAggregates:
    def test_geometric_mean(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)
        assert geometric_mean([1.7, 3.7]) == pytest.approx(
            math.sqrt(1.7 * 3.7))

    def test_geometric_mean_validation(self):
        with pytest.raises(ValueError):
            geometric_mean([])
        with pytest.raises(ValueError):
            geometric_mean([1.0, -2.0])

    def test_normalized_energy_fixpoints(self):
        assert normalized_energy(-10.0, e0=-10.0, e_mixed=0.0) == 0.0
        assert normalized_energy(0.0, e0=-10.0, e_mixed=0.0) == 1.0
        assert normalized_energy(-5.0, e0=-10.0, e_mixed=0.0) == 0.5

    def test_normalized_energy_validation(self):
        with pytest.raises(ValueError):
            normalized_energy(0.0, e0=1.0, e_mixed=0.0)

    def test_gap_reduction(self):
        assert gap_reduction_percent(1.3) == pytest.approx(23.0769, abs=1e-3)
        assert gap_reduction_percent(2.0) == pytest.approx(50.0)
        with pytest.raises(ValueError):
            gap_reduction_percent(0.0)
