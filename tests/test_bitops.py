"""Equivalence suite for the word-packed Pauli layout.

The packed representation (:mod:`repro.paulis.bitops`,
:class:`~repro.paulis.packed_table.PackedPauliTable`) must be
**bit-identical** to the boolean-matrix oracle through every conjugation
entry point.  This suite pins that at the interesting widths -- n = 1
(single ragged word), 63/64/65 (word boundary straddles), and 100 (the
large-n target) -- with seeded randomized tables, masked row subsets, and
the full set of named Clifford gates including same-word and cross-word
2-qubit placements.
"""

import math

import numpy as np
import pytest

from repro.circuits import Circuit
from repro.paulis import PackedPauliTable, PauliString, PauliSum, PauliTable
from repro.paulis import bitops
from repro.stabilizer import CliffordTableau, gate_tableau
from repro.stabilizer.tableau import (
    _LEVELED_LUT_CACHE,
    _LUT_CACHE,
    _LUT_CACHE_MAX,
    _gate_lut_key,
    apply_gate_levels_to_table,
    apply_gate_to_table,
)

SIZES = [1, 63, 64, 65, 100]
CLIFFORD_1Q = ["i", "x", "y", "z", "h", "s", "sdg", "sx", "sxdg"]
CLIFFORD_2Q = ["cx", "cz", "swap"]


def random_tables(n, num_rows, seed):
    """A random boolean table and its packed twin (independent storage)."""
    rng = np.random.default_rng(seed)
    x = rng.random((num_rows, n)) < 0.5
    z = rng.random((num_rows, n)) < 0.5
    phase = rng.integers(0, 4, num_rows)
    table = PauliTable(x.copy(), z.copy(), phase.copy())
    return table, PackedPauliTable.from_table(table), rng


def assert_tables_equal(packed: PackedPauliTable, table: PauliTable):
    back = packed.to_table()
    np.testing.assert_array_equal(back.x, table.x)
    np.testing.assert_array_equal(back.z, table.z)
    np.testing.assert_array_equal(back.phase_exp, table.phase_exp)


class TestBitops:
    def test_num_words(self):
        assert bitops.num_words(0) == 0
        assert bitops.num_words(1) == 1
        assert bitops.num_words(64) == 1
        assert bitops.num_words(65) == 2
        assert bitops.num_words(128) == 2
        with pytest.raises(ValueError):
            bitops.num_words(-1)

    def test_tail_mask(self):
        assert bitops.tail_mask(64) == np.uint64(0xFFFFFFFFFFFFFFFF)
        assert bitops.tail_mask(1) == np.uint64(1)
        assert bitops.tail_mask(65) == np.uint64(1)
        assert bitops.tail_mask(100) == np.uint64((1 << 36) - 1)

    @pytest.mark.parametrize("n", SIZES)
    def test_pack_unpack_round_trip(self, n):
        rng = np.random.default_rng(n)
        bits = rng.random((37, n)) < 0.5
        words = bitops.pack_bits(bits, n)
        assert words.shape == (37, bitops.num_words(n))
        assert words.dtype == np.uint64
        np.testing.assert_array_equal(bitops.unpack_bits(words, n), bits)

    @pytest.mark.parametrize("n", SIZES)
    def test_tail_bits_are_zero(self, n):
        rng = np.random.default_rng(n + 1)
        bits = rng.random((20, n)) < 0.9
        words = bitops.pack_bits(bits, n)
        assert np.all(words[:, -1] & ~bitops.tail_mask(n) == 0)

    def test_pack_unpack_zero_rows(self):
        words = bitops.pack_bits(np.zeros((0, 65), dtype=bool), 65)
        assert words.shape == (0, 2)
        assert bitops.unpack_bits(words, 65).shape == (0, 65)

    def test_pack_wider_register(self):
        bits = np.eye(3, dtype=bool)
        words = bitops.pack_bits(bits, 100)
        assert words.shape == (3, 2)
        np.testing.assert_array_equal(bitops.unpack_bits(words, 100)[:, :3],
                                      bits)

    @pytest.mark.parametrize("n", SIZES)
    def test_popcount_matches_unpacked_sum(self, n):
        rng = np.random.default_rng(n + 2)
        bits = rng.random((25, n)) < 0.5
        words = bitops.pack_bits(bits, n)
        counts = bitops.popcount_rows(words)
        assert counts.dtype == np.int64
        np.testing.assert_array_equal(counts, bits.sum(axis=1))

    def test_popcount_byte_table_fallback(self):
        # the pre-numpy-2.0 byte-table path must agree with the ufunc
        table = np.array([bin(v).count("1") for v in range(256)],
                         dtype=np.uint8)
        rng = np.random.default_rng(3)
        words = rng.integers(0, 2**64, size=(11, 3), dtype=np.uint64)
        per_byte = table[words.view(np.uint8)]
        fallback = per_byte.reshape(words.shape + (8,)).sum(axis=-1,
                                                            dtype=np.uint8)
        np.testing.assert_array_equal(fallback, bitops.popcount(words))

    @pytest.mark.parametrize("n", SIZES)
    def test_get_set_bit_round_trip(self, n):
        rng = np.random.default_rng(n + 3)
        bits = rng.random((30, n)) < 0.5
        words = bitops.pack_bits(bits, n)
        for q in {0, n // 2, n - 1}:
            np.testing.assert_array_equal(bitops.get_bit(words, q),
                                          bits[:, q])
            np.testing.assert_array_equal(bitops.get_bit_i64(words, q),
                                          bits[:, q].astype(np.int64))
            new = rng.random(30) < 0.5
            bitops.set_bit(words, q, new)
            bits[:, q] = new
        np.testing.assert_array_equal(bitops.unpack_bits(words, n), bits)

    def test_get_set_bit_row_subset(self):
        n = 65  # ragged last word: column 64 lives at bit 0 of word 1
        rng = np.random.default_rng(9)
        bits = rng.random((40, n)) < 0.5
        words = bitops.pack_bits(bits, n)
        idx = np.flatnonzero(rng.random(40) < 0.3)
        for q in (0, 63, 64):
            np.testing.assert_array_equal(
                bitops.get_bit_i64(words, q, idx),
                bits[idx, q].astype(np.int64))
            new = rng.random(len(idx)) < 0.5
            bitops.set_bit(words, q, new, idx)
            bits[idx, q] = new
        np.testing.assert_array_equal(bitops.unpack_bits(words, n), bits)


class TestPackedPauliTable:
    @pytest.mark.parametrize("n", SIZES)
    def test_round_trip(self, n):
        table, packed, _ = random_tables(n, 23, n)
        assert packed.num_rows == 23
        assert packed.num_qubits == n
        assert packed.num_words == bitops.num_words(n)
        assert_tables_equal(packed, table)

    @pytest.mark.parametrize("n", SIZES)
    def test_queries_match_bool_oracle(self, n):
        table, packed, rng = random_tables(n, 29, n + 10)
        # force real phases so signs() is defined (both layouts identically)
        real = (np.sum(table.x & table.z, axis=1)
                + 2 * rng.integers(0, 2, 29)) % 4
        table.phase_exp[:] = real
        packed.phase_exp[:] = real
        np.testing.assert_array_equal(packed.signs(), table.signs())
        np.testing.assert_array_equal(packed.z_type_mask(),
                                      table.z_type_mask())
        np.testing.assert_array_equal(packed.expectation_all_zeros(),
                                      table.expectation_all_zeros())
        np.testing.assert_array_equal(packed.weights(), table.weights())
        np.testing.assert_array_equal(packed.supports_mask(),
                                      table.supports_mask())
        np.testing.assert_array_equal(packed.unpack_x(), table.x)
        np.testing.assert_array_equal(packed.unpack_z(), table.z)
        for q in {0, n // 2, n - 1}:
            np.testing.assert_array_equal(packed.x_column(q),
                                          table.x_column(q))
            np.testing.assert_array_equal(packed.z_column(q),
                                          table.z_column(q))
            idx = np.flatnonzero(rng.random(29) < 0.4)
            np.testing.assert_array_equal(packed.codes_on(q, idx),
                                          table.codes_on(q, idx))
        qubits = sorted({0, n // 2, n - 1})
        np.testing.assert_array_equal(packed.touches_any(qubits),
                                      table.touches_any(qubits))

    def test_signs_rejects_imaginary_phase(self):
        packed = PackedPauliTable.from_labels(["X"])
        packed.phase_exp[0] = 1
        with pytest.raises(ValueError):
            packed.signs()

    @pytest.mark.parametrize("n", [1, 65])
    def test_mul_pauli_on_rows_matches(self, n):
        table, packed, rng = random_tables(n, 31, n + 20)
        other_x = rng.random(n) < 0.5
        other_z = rng.random(n) < 0.5
        other = PauliString(other_x, other_z, 2)
        mask = rng.random(31) < 0.5
        table.mul_pauli_on_rows(mask, other)
        packed.mul_pauli_on_rows(mask, other)
        assert_tables_equal(packed, table)

    def test_tile_and_row(self):
        packed = PackedPauliTable.from_labels(["XZ", "YI"])
        tiled = packed.tile(3)
        assert tiled.num_rows == 6
        assert str(tiled.row(4)) == str(packed.row(0))
        assert str(tiled.row(5)) == str(packed.row(1))


class TestEmptyTables:
    """0-row tables are first class in both representations."""

    def test_from_paulis_empty_needs_width(self):
        with pytest.raises(ValueError):
            PauliTable.from_paulis([])
        table = PauliTable.from_paulis([], num_qubits=5)
        assert table.num_rows == 0
        assert table.num_qubits == 5
        packed = PackedPauliTable.from_paulis([], num_qubits=5)
        assert packed.num_rows == 0
        assert packed.num_qubits == 5

    @pytest.mark.parametrize("n", [1, 64, 100])
    def test_tile_zero(self, n):
        table, packed, _ = random_tables(n, 7, n)
        for empty in (table.tile(0), packed.tile(0)):
            assert empty.num_rows == 0
            assert empty.num_qubits == n
        assert_tables_equal(packed.tile(0), table.tile(0))

    def test_empty_queries(self):
        for empty in (PauliTable.from_paulis([], num_qubits=4),
                      PackedPauliTable.from_paulis([], num_qubits=4)):
            assert empty.signs().shape == (0,)
            assert empty.expectation_all_zeros().shape == (0,)
            assert empty.weights().shape == (0,)
            assert empty.z_type_mask().shape == (0,)

    def test_empty_conjugation(self):
        rng = np.random.default_rng(5)
        circuit = _random_clifford_circuit(4, 12, rng)
        tableau = CliffordTableau.from_circuit(circuit)
        table = PauliTable.from_paulis([], num_qubits=4)
        packed = PackedPauliTable.from_paulis([], num_qubits=4)
        out_b = tableau.conjugate_table(table)
        out_p = tableau.conjugate_table(packed)
        assert out_b.num_rows == 0
        assert out_p.num_rows == 0
        gate = gate_tableau("h")
        apply_gate_to_table(table, gate, [1])
        apply_gate_to_table(packed, gate, [1])
        assert_tables_equal(packed, table)

    def test_empty_pauli_sum(self):
        empty = PauliSum(PauliTable.from_paulis([], num_qubits=3),
                         np.zeros(0))
        assert empty.num_terms == 0


def _random_clifford_circuit(num_qubits, depth, rng):
    circ = Circuit(num_qubits)
    for _ in range(depth):
        choice = rng.integers(0, 3)
        if choice == 0 or num_qubits == 1:
            name = CLIFFORD_1Q[rng.integers(0, len(CLIFFORD_1Q))]
            circ.append(name, [int(rng.integers(0, num_qubits))])
        elif choice == 1:
            name = ["rx", "ry", "rz"][rng.integers(0, 3)]
            angle = int(rng.integers(0, 4)) * math.pi / 2
            circ.append(name, [int(rng.integers(0, num_qubits))], [angle])
        else:
            a, b = rng.choice(num_qubits, size=2, replace=False)
            circ.append(CLIFFORD_2Q[rng.integers(0, 3)], [int(a), int(b)])
    return circ


class TestConjugationEquivalence:
    """Every conjugation entry point, packed vs boolean oracle."""

    @pytest.mark.parametrize("n", SIZES)
    @pytest.mark.parametrize("name", CLIFFORD_1Q + ["rx", "ry", "rz"])
    def test_single_qubit_gates(self, n, name):
        params = (math.pi / 2,) if name.startswith("r") else ()
        gate = gate_tableau(name, params)
        table, packed, rng = random_tables(n, 41, hash((n, name)) % 2**31)
        for q in sorted({0, n // 2, n - 1}):
            for rows in (None, rng.random(41) < 0.4,
                         np.zeros(41, dtype=bool)):
                apply_gate_to_table(table, gate, [q], rows=rows)
                apply_gate_to_table(packed, gate, [q], rows=rows)
        assert_tables_equal(packed, table)

    @pytest.mark.parametrize("n", [2, 63, 64, 65, 100])
    @pytest.mark.parametrize("name", CLIFFORD_2Q)
    def test_two_qubit_gates(self, n, name):
        gate = gate_tableau(name)
        table, packed, rng = random_tables(n, 41, hash((n, name)) % 2**31)
        pairs = [(0, n - 1), (n - 1, 0)]
        if n >= 65:
            # same-word, cross-word, and word-boundary placements
            pairs += [(3, 17), (63, 64), (64, 63), (62, 64)]
        for qubits in pairs:
            if qubits[0] == qubits[1]:
                continue
            for rows in (None, rng.random(41) < 0.4,
                         np.zeros(41, dtype=bool)):
                apply_gate_to_table(table, gate, list(qubits), rows=rows)
                apply_gate_to_table(packed, gate, list(qubits), rows=rows)
        assert_tables_equal(packed, table)

    @pytest.mark.parametrize("n", [3, 65, 100])
    def test_wide_gate_fallback(self, n):
        # k > 2 has no LUT: the packed path extracts the sub-bits and runs
        # the boolean row multiplications, then deposits the image back
        rng = np.random.default_rng(n)
        gate = CliffordTableau.from_circuit(_random_clifford_circuit(3, 15,
                                                                     rng))
        table, packed, rng = random_tables(n, 33, n + 40)
        qubits = sorted({0, n // 2, n - 1})
        if len(qubits) < 3:
            qubits = [0, 1, 2]
        for rows in (None, rng.random(33) < 0.4):
            apply_gate_to_table(table, gate, qubits, rows=rows)
            apply_gate_to_table(packed, gate, qubits, rows=rows)
        assert_tables_equal(packed, table)

    @pytest.mark.parametrize("n", [2, 64, 65, 100])
    def test_leveled_pass_matches_masked_passes(self, n):
        table, packed, rng = random_tables(n, 60, n + 50)
        levels = rng.integers(0, 4, 60)
        k, lq = 0, n - 1
        entries = [None,
                   (gate_tableau("cx"), False),
                   (gate_tableau("cx"), True),
                   (gate_tableau("swap"), False)]
        apply_gate_levels_to_table(packed, entries, [k, lq], levels)
        for level in (1, 2, 3):
            rows = levels == level
            if level == 1:
                apply_gate_to_table(table, gate_tableau("cx"), [k, lq],
                                    rows=rows)
            elif level == 2:
                apply_gate_to_table(table, gate_tableau("cx"), [lq, k],
                                    rows=rows)
            else:
                apply_gate_to_table(table, gate_tableau("swap"), [k, lq],
                                    rows=rows)
        assert_tables_equal(packed, table)

    @pytest.mark.parametrize("n", [1, 65])
    def test_leveled_rotations_match_masked_passes(self, n):
        table, packed, rng = random_tables(n, 60, n + 60)
        levels = rng.integers(0, 4, 60)
        q = n - 1
        entries = [None] + [
            (gate_tableau("rz", (-float(level * (math.pi / 2)),)), False)
            for level in (1, 2, 3)]
        apply_gate_levels_to_table(packed, entries, [q], levels)
        for level in (1, 2, 3):
            gate = gate_tableau("rz", (-float(level * (math.pi / 2)),))
            apply_gate_to_table(table, gate, [q], rows=levels == level)
        assert_tables_equal(packed, table)

    @pytest.mark.parametrize("n", [1, 5, 65])
    def test_from_circuit_packed_matches_bool(self, n):
        rng = np.random.default_rng(n + 70)
        circuit = _random_clifford_circuit(n, 30, rng)
        assert (CliffordTableau.from_circuit(circuit, packed=True)
                == CliffordTableau.from_circuit(circuit, packed=False))

    @pytest.mark.parametrize("n", [1, 5, 65])
    def test_conjugate_table_packed_matches_bool(self, n):
        rng = np.random.default_rng(n + 80)
        tableau = CliffordTableau.from_circuit(
            _random_clifford_circuit(n, 25, rng))
        table, packed, _ = random_tables(n, 19, n + 81)
        assert_tables_equal(tableau.conjugate_table(packed),
                            tableau.conjugate_table(table))


class TestTransformationEquivalence:
    @pytest.mark.parametrize("n", [2, 6])
    def test_transform_table(self, n):
        from repro.core.transformation import transform_table
        from repro.hamiltonians import ising_model

        from repro.circuits import num_transformation_parameters

        ham = ising_model(n, 1.0)
        rng = np.random.default_rng(n)
        gamma = rng.integers(0, 4, num_transformation_parameters(n))
        packed = transform_table(ham, gamma, packed=True)
        table = transform_table(ham, gamma, packed=False)
        assert isinstance(packed, PackedPauliTable)
        assert_tables_equal(packed, table)

    @pytest.mark.parametrize("n", [2, 6])
    def test_transform_table_many(self, n):
        from repro.core.transformation import transform_table_many
        from repro.hamiltonians import ising_model

        from repro.circuits import num_transformation_parameters

        ham = ising_model(n, 1.0)
        rng = np.random.default_rng(n + 1)
        gammas = rng.integers(0, 4,
                              size=(9, num_transformation_parameters(n)))
        packed = transform_table_many(ham, gammas, packed=True)
        table = transform_table_many(ham, gammas, packed=False)
        assert isinstance(packed, PackedPauliTable)
        assert_tables_equal(packed, table)

    @pytest.mark.parametrize("loss_name", ["clapton", "cafqa", "ncafqa"])
    def test_losses_bit_identical(self, loss_name):
        from repro.core import CafqaLoss, ClaptonLoss, NcafqaLoss, VQEProblem
        from repro.hamiltonians import ising_model
        from repro.noise import NoiseModel

        n = 5
        ham = ising_model(n, 1.0)
        noise = NoiseModel.uniform(n, depol_1q=1e-3, depol_2q=8e-3,
                                   readout=2e-2, t1=80e-6)
        problem = VQEProblem.logical(ham, noise_model=noise)
        cls = {"clapton": ClaptonLoss, "cafqa": CafqaLoss,
               "ncafqa": NcafqaLoss}[loss_name]
        dim = (problem.num_transformation_parameters
               if loss_name == "clapton" else problem.num_vqe_parameters)
        rng = np.random.default_rng(11)
        genomes = rng.integers(0, 4, size=(12, dim))
        loss_p = cls(problem, packed=True)
        loss_b = cls(problem, packed=False)
        np.testing.assert_array_equal(loss_p.evaluate_many(genomes),
                                      loss_b.evaluate_many(genomes))
        np.testing.assert_array_equal(loss_p(genomes[0]), loss_b(genomes[0]))

    def test_embed_table_packed(self):
        from repro.core.transformation import embed_table

        table, packed, _ = random_tables(5, 13, 90)
        positions = [7, 0, 3, 9, 4]
        out_b = embed_table(table, positions, 10)
        out_p = embed_table(packed, positions, 10)
        assert isinstance(out_p, PackedPauliTable)
        assert_tables_equal(out_p, out_b)
        # trivial embedding is a plain copy in both representations
        same = embed_table(packed, list(range(5)), 5)
        assert same is not packed
        assert_tables_equal(same, table)


class TestLutCache:
    """The conjugation LUT caches are bounded LRU keyed on gate contents."""

    def test_content_key_shared_between_equal_gates(self):
        a = gate_tableau("h")
        b = CliffordTableau(a.rows.copy())
        assert a is not b
        assert _gate_lut_key(a) == _gate_lut_key(b)
        # memoized on the instance after first computation
        assert a._lut_key is not None
        assert _gate_lut_key(a) is a._lut_key

    def test_distinct_gates_distinct_keys(self):
        assert _gate_lut_key(gate_tableau("h")) != _gate_lut_key(
            gate_tableau("s"))

    def test_cache_bounded_with_lru_eviction(self, monkeypatch):
        import repro.stabilizer.tableau as tableau_mod

        monkeypatch.setattr(tableau_mod, "_LUT_CACHE_MAX", 6)
        _LUT_CACHE.clear()
        try:
            first = gate_tableau("h")
            tableau_mod._conjugation_lut(first)
            first_key = _gate_lut_key(first)
            assert first_key in _LUT_CACHE
            rng = np.random.default_rng(0)
            inserted = {first_key}
            while len(inserted) < 10:
                gate = CliffordTableau.from_circuit(
                    _random_clifford_circuit(2, 10, rng))
                key = _gate_lut_key(gate)
                if key in inserted:
                    continue
                tableau_mod._conjugation_lut(gate)
                # keep the H entry hot so LRU eviction skips it
                tableau_mod._conjugation_lut(first)
                inserted.add(key)
            assert len(_LUT_CACHE) <= 6
            assert first_key in _LUT_CACHE  # hot entry survived
        finally:
            _LUT_CACHE.clear()

    def test_leveled_cache_bounded(self):
        _LEVELED_LUT_CACHE.clear()
        entries = [None, (gate_tableau("cx"), False),
                   (gate_tableau("cx"), True),
                   (gate_tableau("swap"), False)]
        packed = PackedPauliTable.from_labels(["XZ", "ZX"])
        apply_gate_levels_to_table(packed, entries, [0, 1],
                                   np.array([0, 0]))
        assert len(_LEVELED_LUT_CACHE) == 1
        # a second identical slot reuses the entry, not a new one
        apply_gate_levels_to_table(packed, entries, [0, 1],
                                   np.array([1, 2]))
        assert len(_LEVELED_LUT_CACHE) == 1
        assert len(_LEVELED_LUT_CACHE) <= _LUT_CACHE_MAX
