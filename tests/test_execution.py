"""Equivalence suite for the unified estimation/execution API.

Pins the redesign's contracts: batched ``estimate_many`` matches sequential
``estimate`` bit-for-bit, every executor drives the Figure-4 engine
deterministically (thread and process runs agree with each other), the
shared memoiser works under all of them, the deprecation shims emit
``DeprecationWarning`` while returning identical results, and the
``Experiment`` façade reproduces the legacy runner numbers exactly.
"""

import json

import numpy as np
import pytest

from repro.core import VQEProblem, cafqa
from repro.execution import (
    BatchResult,
    EstimateResult,
    Estimator,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    make_estimator,
    memoize_loss,
)
from repro.experiments import Experiment, ExperimentResult, compare_initializations
from repro.hamiltonians import ising_model
from repro.noise import NoiseModel
from repro.optim import EngineConfig, multi_ga_minimize

ENGINE = EngineConfig(num_instances=2, generations_per_round=8, top_k=4,
                      population_size=14, retry_rounds=0, seed=0)


def make_problem(n=3, noisy=True):
    h = ising_model(n, 1.0)
    nm = (NoiseModel.uniform(n, depol_1q=1e-3, depol_2q=8e-3, readout=0.02,
                             t1=80e-6)
          if noisy else NoiseModel.noiseless(n))
    return VQEProblem.logical(h, noise_model=nm)


def count_nonzero_loss(genome):
    """Toy objective (top-level so process executors can pickle it)."""
    return float(np.count_nonzero(genome))


# ----------------------------------------------------------------------
# Estimators
# ----------------------------------------------------------------------
class TestEstimators:
    def test_batched_matches_sequential_exact(self):
        problem = make_problem()
        est = make_estimator(problem, mode="exact")
        rng = np.random.default_rng(0)
        thetas = rng.uniform(0, 2 * np.pi, (12, problem.num_vqe_parameters))
        sequential = np.array([est.estimate(t).value for t in thetas])
        batch = est.estimate_many(thetas)
        assert isinstance(batch, BatchResult)
        np.testing.assert_allclose(batch.values, sequential, atol=1e-12)
        assert est.num_evaluations == 24
        assert batch.term_expectations.shape == (12, problem.hamiltonian.num_terms)

    def test_batched_matches_sequential_with_shot_emulation(self):
        problem = make_problem()
        thetas = np.random.default_rng(1).uniform(
            0, 2 * np.pi, (5, problem.num_vqe_parameters))
        a = make_estimator(problem, mode="exact", shots=256, seed=3)
        b = make_estimator(problem, mode="exact", shots=256, seed=3)
        sequential = np.array([a.estimate(t).value for t in thetas])
        np.testing.assert_allclose(b.estimate_many(thetas).values,
                                   sequential, atol=1e-12)

    def test_batched_matches_sequential_counts(self):
        problem = make_problem()
        thetas = np.random.default_rng(2).uniform(
            0, 2 * np.pi, (3, problem.num_vqe_parameters))
        a = make_estimator(problem, mode="shots", shots=512, seed=4)
        b = make_estimator(problem, mode="shots", shots=512, seed=4)
        sequential = np.array([a.estimate(t).value for t in thetas])
        np.testing.assert_allclose(b.estimate_many(thetas).values,
                                   sequential, atol=1e-12)

    def test_clifford_fast_path_matches_exact_when_noiseless(self):
        problem = make_problem(noisy=False)
        exact = make_estimator(problem, mode="exact")
        clifford = make_estimator(problem, mode="clifford")
        rng = np.random.default_rng(5)
        thetas = (np.pi / 2) * rng.integers(
            0, 4, (6, problem.num_vqe_parameters))
        np.testing.assert_allclose(clifford.estimate_many(thetas).values,
                                   exact.estimate_many(thetas).values,
                                   atol=1e-10)

    def test_clifford_rejects_non_clifford_points(self):
        problem = make_problem()
        est = make_estimator(problem, mode="clifford")
        with pytest.raises(ValueError):
            est.estimate(np.full(problem.num_vqe_parameters, 0.3))

    def test_estimate_result_provenance(self):
        problem = make_problem()
        est = make_estimator(problem, mode="exact", shots=128, seed=0)
        result = est.estimate(np.zeros(problem.num_vqe_parameters))
        assert isinstance(result, EstimateResult)
        assert result.mode == "exact" and result.shots == 128
        assert result.variance > 0 and result.seconds > 0
        assert result.value != result.exact_value  # shot noise applied

    def test_factory_validation_and_protocol(self):
        problem = make_problem()
        est = make_estimator(problem)
        assert isinstance(est, Estimator)
        with pytest.raises(ValueError):
            make_estimator(problem, mode="bogus")
        with pytest.raises(ValueError):
            make_estimator(problem, noise_model=NoiseModel.noiseless(7))
        # mode-irrelevant arguments are rejected, not silently ignored
        with pytest.raises(ValueError, match="do not apply"):
            make_estimator(problem, mode="exact", readout_mitigation=True)
        with pytest.raises(ValueError, match="do not apply"):
            make_estimator(problem, mode="clifford", shots=128)

    def test_counts_estimate_has_no_exact_value(self):
        problem = make_problem()
        est = make_estimator(problem, mode="shots", shots=64, seed=0)
        result = est.estimate(np.zeros(problem.num_vqe_parameters))
        assert result.exact_value is None and result.variance is None


# ----------------------------------------------------------------------
# Executors + engine
# ----------------------------------------------------------------------
class TestExecutors:
    def test_map_preserves_order(self):
        items = list(range(7))
        for executor in (SerialExecutor(), ThreadExecutor(3),
                         ProcessExecutor(2)):
            with executor:
                assert executor.map(str, items) == [str(i) for i in items]

    def test_engine_serial_default_unchanged(self):
        a = multi_ga_minimize(count_nonzero_loss, 8, config=ENGINE)
        b = multi_ga_minimize(count_nonzero_loss, 8, config=ENGINE,
                              executor=SerialExecutor())
        assert a.best_loss == b.best_loss
        np.testing.assert_array_equal(a.best_genome, b.best_genome)
        assert a.num_evaluations == b.num_evaluations

    def test_engine_thread_and_process_agree(self):
        with ThreadExecutor(2) as threads:
            t = multi_ga_minimize(count_nonzero_loss, 8, config=ENGINE,
                                  executor=threads)
        with ProcessExecutor(2) as processes:
            p = multi_ga_minimize(count_nonzero_loss, 8, config=ENGINE,
                                  executor=processes)
        assert t.best_loss == p.best_loss
        np.testing.assert_array_equal(t.best_genome, p.best_genome)
        assert t.num_evaluations == p.num_evaluations

    def test_engine_parallel_deterministic_across_worker_counts(self):
        with ThreadExecutor(1) as one, ThreadExecutor(4) as four:
            a = multi_ga_minimize(count_nonzero_loss, 8, config=ENGINE,
                                  executor=one)
            b = multi_ga_minimize(count_nonzero_loss, 8, config=ENGINE,
                                  executor=four)
        assert a.best_loss == b.best_loss
        np.testing.assert_array_equal(a.best_genome, b.best_genome)
        assert a.num_evaluations == b.num_evaluations

    def test_num_processes_knob_deprecated_but_working(self):
        config = EngineConfig(num_instances=2, generations_per_round=6,
                              top_k=3, population_size=10, retry_rounds=0,
                              seed=1, num_processes=2)
        with pytest.warns(DeprecationWarning):
            result = multi_ga_minimize(count_nonzero_loss, 6, config=config)
        assert result.best_loss == 0.0

    def test_parallel_cache_persists_across_rounds(self):
        """The old parallel path re-evaluated repeated genomes every round."""
        config = EngineConfig(num_instances=2, generations_per_round=6,
                              top_k=3, population_size=10, retry_rounds=2,
                              max_rounds=6, seed=2)
        with ThreadExecutor(2) as threads:
            result = multi_ga_minimize(count_nonzero_loss, 2, config=config,
                                       executor=threads)
        # only 4^2 = 16 distinct genomes exist; with a cross-round cache the
        # later rounds cannot spend full population * generations evaluations
        assert result.num_rounds >= 3
        for record in result.rounds[1:]:
            assert record.num_evaluations <= 2 * 16


class TestMemoizeLoss:
    def test_caches_and_merges(self):
        calls = []

        def loss(genome):
            calls.append(1)
            return float(np.sum(genome))

        memo = memoize_loss(loss)
        g = np.array([1, 2, 3])
        assert memo(g) == 6.0 and memo(g) == 6.0
        assert len(calls) == 1 and memo.hits == 1 and memo.misses == 1
        other = memoize_loss(loss, memo.snapshot())
        assert other(g) == 6.0
        assert len(calls) == 1
        memo.merge({b"x": 1.5})
        assert len(memo) == 2


# ----------------------------------------------------------------------
# Deprecation shims
# ----------------------------------------------------------------------
class TestShims:
    def test_energy_estimator_shim(self):
        problem = make_problem()
        observable = problem.mapped_hamiltonian()
        from repro.vqe import EnergyEstimator

        with pytest.warns(DeprecationWarning):
            old = EnergyEstimator(problem, observable, shots=64, seed=9)
        new = make_estimator(problem, observable, mode="exact", shots=64,
                             seed=9)
        theta = np.linspace(0, 1, problem.num_vqe_parameters)
        assert old.energy(theta) == new.energy(theta)

    def test_counts_estimator_shim(self):
        problem = make_problem()
        observable = problem.mapped_hamiltonian()
        from repro.vqe import CountsEnergyEstimator

        with pytest.warns(DeprecationWarning):
            old = CountsEnergyEstimator(problem, observable, shots=256,
                                        seed=9)
        new = make_estimator(problem, observable, mode="shots", shots=256,
                             seed=9)
        theta = np.zeros(problem.num_vqe_parameters)
        assert old.energy(theta) == pytest.approx(new.energy(theta),
                                                  abs=1e-12)


# ----------------------------------------------------------------------
# Experiment façade
# ----------------------------------------------------------------------
class TestExperiment:
    def test_reproduces_legacy_runner_exactly(self):
        h = ising_model(3, 1.0)
        nm = NoiseModel.uniform(3, depol_1q=1e-3, depol_2q=1e-2,
                                readout=0.02, t1=80e-6)
        row = compare_initializations(
            "ising3", h, VQEProblem.logical(h, noise_model=nm),
            config=ENGINE, vqe_iterations=4)
        result = Experiment(h, noise_model=nm, name="ising3").run(
            config=ENGINE, vqe_iterations=4)
        assert result.benchmark == "ising3"
        for method, evaluation in row.evaluations.items():
            assert result.runs[method].evaluation == evaluation
            assert (result.runs[method].vqe.final_energy
                    == row.vqe[method].final_energy)
        assert result.eta_initial("cafqa") == row.eta_initial("cafqa")

    def test_json_round_trip(self):
        h = ising_model(3, 1.0)
        result = Experiment(h).run(methods=("cafqa",), config=ENGINE,
                                   vqe_iterations=3)
        data = json.loads(json.dumps(result.to_dict()))
        restored = ExperimentResult.from_dict(data)
        assert restored.to_dict() == result.to_dict()
        assert restored.runs["cafqa"].vqe.num_evaluations > 0

    def test_rejects_unknown_method(self):
        with pytest.raises(ValueError):
            Experiment(ising_model(3, 1.0)).run(methods=("bogus",),
                                                config=ENGINE)

    def test_executor_threads_through_facade(self):
        h = ising_model(3, 1.0)
        with ThreadExecutor(2) as threads:
            a = Experiment(h).run(methods=("cafqa",), config=ENGINE,
                                  executor=threads)
            b = Experiment(h).run(methods=("cafqa",), config=ENGINE,
                                  executor=threads)
        assert (a.runs["cafqa"].evaluation.device_model
                == b.runs["cafqa"].evaluation.device_model)


# ----------------------------------------------------------------------
# VQE evaluation breakdown (bugfix)
# ----------------------------------------------------------------------
class TestEvaluationBreakdown:
    def test_trace_counts_every_tier(self):
        problem = make_problem()
        init = cafqa(problem, config=ENGINE)
        from repro.vqe import run_vqe

        trace = run_vqe(init, maxiter=5, seed=1)
        tiers = trace.evaluations_by_tier
        assert tiers["exact"] == 2          # the two endpoint energies
        assert tiers["noisy"] >= 2 * 5      # SPSA pays 2/iteration
        assert "hardware" not in tiers      # no twin attached
        assert trace.num_evaluations == sum(tiers.values())
