"""Tests for the pluggable search subsystem.

The acceptance-critical behaviors live here: every registered strategy
reproduces itself under a fixed seed and respects
``SearchBudget.max_evaluations`` *exactly*; the ``multi_ga`` adapter is
bit-identical to a direct ``multi_ga_minimize`` call (so the PR-3 goldens
cannot move); and the strategy axis flows through ``Experiment``,
campaign grids/reports, and the CLI.
"""

import numpy as np
import pytest

from repro.campaigns import (
    CampaignAggregate,
    CampaignRunner,
    CampaignSpec,
    ResultStore,
    render_report,
)
from repro.cli import main
from repro.experiments import Experiment, ExperimentResult
from repro.hamiltonians import ising_model
from repro.noise import NoiseModel
from repro.optim import EngineConfig, multi_ga_minimize
from repro.search import (
    BudgetedLoss,
    BudgetExhausted,
    SearchBudget,
    SearchResult,
    SearchStrategy,
    SearchTrace,
    available_strategies,
    get_strategy,
    register_strategy,
    resolve_strategy,
    strategy_names,
    unregister_strategy,
)

BUILTIN_STRATEGIES = ("multi_ga", "annealing", "tabu", "restart_climb")

TINY_OVERRIDES = {"num_instances": 2, "generations_per_round": 6,
                  "top_k": 3, "population_size": 10, "retry_rounds": 0}
TINY = EngineConfig(seed=0, **TINY_OVERRIDES)


def quad_loss(genome) -> float:
    """Cheap synthetic loss with a unique minimum at all-ones."""
    g = np.asarray(genome, dtype=float)
    return float(np.sum((g - 1.0) ** 2) + 0.1 * g[0])


def tiny_problem(n=3):
    from repro.core import VQEProblem

    h = ising_model(n, 1.0)
    nm = NoiseModel.uniform(n, depol_1q=1e-3, depol_2q=1e-2,
                            readout=0.02, t1=80e-6)
    return h, VQEProblem.logical(h, noise_model=nm)


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
class FixedZeroStrategy(SearchStrategy):
    """User-defined strategy: evaluate the zero genome once (no core
    edits)."""

    name = "fixed_zero"
    description = "deterministic test strategy: the all-zero genome"

    def minimize(self, loss_fn, num_parameters, num_values=4, *,
                 budget=None, config=None, rng=None, executor=None):
        genome = np.zeros(num_parameters, dtype=np.int64)
        value = float(loss_fn(genome))
        trace = [SearchTrace(round_index=0, best_loss=value,
                             num_evaluations=1, duration_seconds=0.0)]
        return SearchResult(strategy=self.name, best_genome=genome,
                            best_loss=value, trace=trace,
                            num_evaluations=1, total_seconds=0.0)


@pytest.fixture()
def custom_strategy():
    register_strategy(FixedZeroStrategy)
    yield "fixed_zero"
    unregister_strategy("fixed_zero")


class TestRegistry:
    def test_builtins_registered_in_order(self):
        assert strategy_names()[:4] == BUILTIN_STRATEGIES
        for name, strategy in available_strategies().items():
            assert strategy.name == name and strategy.description

    def test_get_strategy_did_you_mean(self):
        with pytest.raises(KeyError, match="did you mean 'annealing'"):
            get_strategy("anealing")

    def test_resolve_strategy_defaults_and_errors(self):
        assert resolve_strategy().name == "multi_ga"
        assert resolve_strategy("tabu").name == "tabu"
        instance = get_strategy("annealing")
        assert resolve_strategy(instance) is instance
        with pytest.raises(TypeError):
            resolve_strategy(42)

    def test_duplicate_registration_rejected(self, custom_strategy):
        with pytest.raises(ValueError, match="already registered"):
            register_strategy(FixedZeroStrategy)
        register_strategy(FixedZeroStrategy(), replace=True)


# ----------------------------------------------------------------------
# Determinism + budget contracts (every registered strategy)
# ----------------------------------------------------------------------
class TestContracts:
    @pytest.mark.parametrize("name", BUILTIN_STRATEGIES)
    def test_fixed_seed_reproduces_itself(self, name):
        strategy = get_strategy(name)
        first = strategy.minimize(quad_loss, 10, config=TINY)
        second = strategy.minimize(quad_loss, 10, config=TINY)
        assert np.array_equal(first.best_genome, second.best_genome)
        assert first.best_loss == second.best_loss
        assert first.num_evaluations == second.num_evaluations
        assert [t.best_loss for t in first.trace] == \
            [t.best_loss for t in second.trace]

    @pytest.mark.parametrize("name", BUILTIN_STRATEGIES)
    def test_max_evaluations_respected_exactly(self, name):
        budget = SearchBudget(max_evaluations=37, max_rounds=5000)
        result = get_strategy(name).minimize(quad_loss, 12, config=TINY,
                                             budget=budget)
        assert result.num_evaluations == 37
        assert result.stopped_by == "evaluations"
        assert np.isfinite(result.best_loss)

    @pytest.mark.parametrize("name", BUILTIN_STRATEGIES)
    def test_target_loss_stops_the_search(self, name):
        budget = SearchBudget(max_evaluations=100_000, max_rounds=5000,
                              target_loss=5.0)
        # enough search capacity that every strategy can reach the target
        config = EngineConfig(seed=0, num_instances=4,
                              generations_per_round=60, top_k=3,
                              population_size=10, retry_rounds=0)
        result = get_strategy(name).minimize(quad_loss, 12, config=config,
                                             budget=budget)
        assert result.best_loss <= 5.0
        assert result.stopped_by == "target"

    @pytest.mark.parametrize("name", BUILTIN_STRATEGIES)
    def test_trace_accounts_for_every_evaluation(self, name):
        result = get_strategy(name).minimize(quad_loss, 8, config=TINY)
        assert result.num_rounds == len(result.trace)
        assert sum(t.num_evaluations for t in result.trace) == \
            result.num_evaluations
        # best_loss is monotone along the trace
        bests = [t.best_loss for t in result.trace]
        assert bests == sorted(bests, reverse=True)

    def test_multi_ga_bit_identical_to_direct_engine(self):
        direct = multi_ga_minimize(quad_loss, 10, config=TINY)
        adapted = get_strategy("multi_ga").minimize(quad_loss, 10,
                                                    config=TINY)
        assert np.array_equal(direct.best_genome, adapted.best_genome)
        assert direct.best_loss == adapted.best_loss
        assert direct.num_evaluations == adapted.num_evaluations
        assert [r.best_loss for r in direct.rounds] == \
            [t.best_loss for t in adapted.trace]
        # the adapter preserves the real EngineResult for consumers
        assert adapted.engine is not None
        assert adapted.as_engine_result() is adapted.engine

    def test_multi_ga_rejects_explicit_rng(self):
        with pytest.raises(ValueError, match="EngineConfig.seed"):
            get_strategy("multi_ga").minimize(
                quad_loss, 4, config=TINY, rng=np.random.default_rng(0))

    @pytest.mark.parametrize("name", ("annealing", "tabu",
                                      "restart_climb"))
    def test_executor_sharding_is_bit_identical(self, name):
        from repro.execution import ThreadExecutor

        serial = get_strategy(name).minimize(quad_loss, 8, config=TINY)
        with ThreadExecutor(2) as executor:
            sharded = get_strategy(name).minimize(quad_loss, 8,
                                                  config=TINY,
                                                  executor=executor)
        assert np.array_equal(serial.best_genome, sharded.best_genome)
        assert serial.best_loss == sharded.best_loss
        assert serial.num_evaluations == sharded.num_evaluations


class TestBudget:
    def test_validate_rejects_nonpositive_caps(self):
        with pytest.raises(ValueError, match="max_evaluations"):
            SearchBudget(max_evaluations=0).validate()
        with pytest.raises(ValueError, match="max_rounds"):
            SearchBudget(max_rounds=0).validate()

    def test_from_engine_matches_the_ga_ceiling(self):
        budget = SearchBudget.from_engine(TINY)
        per_round = (TINY.num_instances * TINY.population_size
                     * (TINY.generations_per_round + 1))
        assert budget.max_evaluations == per_round * TINY.max_rounds
        # measured in population batches: one engine round is m+1 of them
        assert budget.max_rounds == TINY.max_rounds * \
            (TINY.generations_per_round + 1)

    def test_budgeted_loss_trims_the_final_batch(self):
        tracked = BudgetedLoss(quad_loss, SearchBudget(max_evaluations=5))
        genomes = np.arange(32).reshape(8, 4) % 4
        with pytest.raises(BudgetExhausted):
            tracked.evaluate_many(genomes)
        assert tracked.evaluations == 5
        expected = min(quad_loss(g) for g in genomes[:5])
        assert tracked.best_loss == expected
        with pytest.raises(BudgetExhausted):
            tracked(genomes[6])  # cap already reached


# ----------------------------------------------------------------------
# Experiment integration
# ----------------------------------------------------------------------
class TestExperimentIntegration:
    def test_default_run_is_bit_identical_to_explicit_multi_ga(self):
        h, problem = tiny_problem()
        default = Experiment(h, problem=problem, name="t").run(
            methods="cafqa", config=TINY)
        explicit = Experiment(h, problem=problem, name="t").run(
            methods="cafqa", config=TINY, strategy="multi_ga")
        a, b = default.runs["cafqa"], explicit.runs["cafqa"]
        assert np.array_equal(a.genome, b.genome)
        assert a.loss == b.loss
        assert a.engine_evaluations == b.engine_evaluations
        assert a.strategy == b.strategy == "multi_ga"

    @pytest.mark.parametrize("name", ("annealing", "tabu",
                                      "restart_climb"))
    def test_alternative_strategies_run_end_to_end(self, name):
        h, problem = tiny_problem()
        result = Experiment(h, problem=problem, name="t").run(
            methods="cafqa", config=TINY, strategy=name)
        run = result.runs["cafqa"]
        assert run.strategy == name
        assert run.search_trace  # per-round records survive
        assert run.engine_evaluations == sum(
            t["num_evaluations"] for t in run.search_trace)
        assert run.evaluation is not None  # three-tier evaluation ran

    def test_strategy_and_trace_round_trip_through_json(self):
        h, problem = tiny_problem()
        result = Experiment(h, problem=problem, name="t").run(
            methods="cafqa", config=TINY, strategy="annealing")
        reloaded = ExperimentResult.from_dict(result.to_dict())
        run = reloaded.runs["cafqa"]
        assert run.strategy == "annealing"
        assert run.search_trace == result.runs["cafqa"].search_trace

    def test_unknown_strategy_fails_with_did_you_mean(self):
        h, problem = tiny_problem()
        with pytest.raises(KeyError, match="did you mean"):
            Experiment(h, problem=problem).run(methods="cafqa",
                                               config=TINY,
                                               strategy="anealing")

    def test_custom_strategy_runs_through_experiment(self,
                                                     custom_strategy):
        h, problem = tiny_problem()
        result = Experiment(h, problem=problem, name="t").run(
            methods="cafqa", config=TINY, strategy=custom_strategy)
        run = result.runs["cafqa"]
        assert run.strategy == "fixed_zero"
        assert np.array_equal(run.genome,
                              np.zeros(len(run.genome), dtype=np.int64))

    def test_own_search_shape_methods_ignore_the_axis(self):
        h, problem = tiny_problem()
        result = Experiment(h, problem=problem, name="t").run(
            methods=("vanilla", "random_clifford"), config=TINY,
            strategy="annealing")
        assert result.runs["vanilla"].strategy == "none"
        assert result.runs["random_clifford"].strategy == "best_of_k"

    def test_budget_flows_through_experiment(self):
        h, problem = tiny_problem()
        budget = SearchBudget(max_evaluations=23, max_rounds=5000)
        result = Experiment(h, problem=problem, name="t").run(
            methods="cafqa", config=TINY, strategy="tabu", budget=budget)
        assert result.runs["cafqa"].engine_evaluations == 23

    def test_legacy_search_override_still_runs(self):
        """A pre-axis method overriding search(problem, config, executor)
        keeps working when no strategy is requested, and fails with a
        clear message when one is."""
        from repro.methods import InitializationMethod
        from repro.methods.extras import _AnsatzAngleMethod
        from repro.optim import EngineResult

        class OldStyle(_AnsatzAngleMethod, InitializationMethod):
            name = "old_style"
            description = "legacy three-argument search override"

            def search(self, problem, config=None, executor=None):
                genome = np.zeros(self.num_parameters(problem),
                                  dtype=np.int64)
                return EngineResult(best_genome=genome, best_loss=0.0,
                                    rounds=[], num_evaluations=1,
                                    total_seconds=0.0)

        h, problem = tiny_problem()
        result = OldStyle().run(problem, config=TINY)
        assert result.search is None and result.loss == 0.0
        # the default strategy is "no strategy asked for": the CLI and
        # campaign tasks always pass multi_ga explicitly
        explicit = OldStyle().run(problem, config=TINY,
                                  strategy="multi_ga")
        assert explicit.loss == 0.0
        with pytest.raises(TypeError, match="strategy/budget axis"):
            OldStyle().run(problem, config=TINY, strategy="annealing")


# ----------------------------------------------------------------------
# Campaigns
# ----------------------------------------------------------------------
def strategy_spec(**kwargs) -> CampaignSpec:
    defaults = dict(name="strategy-grid", benchmarks=["ising_J1.00"],
                    qubit_sizes=[3], noise_scales=[1.0],
                    methods=["cafqa"],
                    strategies=["annealing", "restart_climb"], seeds=[0],
                    engine_preset="smoke", engine_overrides=TINY_OVERRIDES)
    defaults.update(kwargs)
    return CampaignSpec(**defaults)


class TestCampaignAxis:
    def test_grid_expands_the_strategy_axis(self):
        spec = strategy_spec(seeds=[0, 1])
        tasks = spec.tasks()
        assert len(tasks) == spec.num_tasks == 4
        assert [(t.strategy, t.seed) for t in tasks] == [
            ("annealing", 0), ("annealing", 1),
            ("restart_climb", 0), ("restart_climb", 1)]
        # non-default strategies appear in the task label
        assert tasks[0].label == \
            "ising_J1.00/3q/noise_x1/cafqa/annealing/s0"

    def test_default_axis_keeps_legacy_labels_and_ids(self):
        spec = strategy_spec(strategies=["multi_ga"])
        task = spec.tasks()[0]
        assert task.label == "ising_J1.00/3q/noise_x1/cafqa/s0"

    def test_spec_rejects_unknown_and_duplicate_strategies(self):
        with pytest.raises(ValueError, match="did you mean"):
            strategy_spec(strategies=["anealing"])
        with pytest.raises(ValueError, match="duplicate"):
            strategy_spec(strategies=["tabu", "tabu"])
        with pytest.raises(ValueError, match="at least one"):
            strategy_spec(strategies=[])

    def test_campaign_runs_and_reports_the_strategy_column(self):
        spec = strategy_spec()
        store = ResultStore.ephemeral(spec)
        progress = CampaignRunner(spec, store).run()
        assert progress.failed == 0 and progress.ran == 2
        aggregate = CampaignAggregate.from_store(store)
        assert {r["strategy"] for r in aggregate.rows} == \
            {"annealing", "restart_climb"}
        report = render_report(store)
        assert "| strategy |" in report or "| setting | method | " \
            "strategy |" in report
        assert "annealing" in report and "restart_climb" in report

    def test_eta_join_never_crosses_strategies(self):
        spec = strategy_spec(methods=["ncafqa", "clapton"],
                             strategies=["multi_ga", "annealing"])
        store = ResultStore.ephemeral(spec)
        CampaignRunner(spec, store).run()
        aggregate = CampaignAggregate.from_store(store)
        rows = aggregate.eta_rows("ncafqa")
        assert len(rows) == 2  # one per strategy, never mixed
        assert {r["strategy"] for r in rows} == {"multi_ga", "annealing"}

    def test_spec_round_trip_preserves_strategies(self, tmp_path):
        spec = strategy_spec()
        path = tmp_path / "spec.json"
        spec.save(path)
        reloaded = CampaignSpec.load(path)
        assert reloaded.strategies == spec.strategies
        assert [t.task_id for t in reloaded.tasks()] == \
            [t.task_id for t in spec.tasks()]

    def test_default_strategy_payloads_keep_the_pre_axis_shape(self):
        """Default-strategy task ids (and store payloads) are
        byte-identical to pre-axis ones, so old stores resume."""
        from repro.campaigns import TaskSpec

        task = strategy_spec(strategies=["multi_ga"]).tasks()[0]
        payload = task.to_dict()
        assert "strategy" not in payload  # the PR-4-era record shape
        assert TaskSpec.from_dict(payload).strategy == "multi_ga"
        assert TaskSpec.from_dict(payload).task_id == task.task_id
        off_default = strategy_spec(strategies=["tabu"]).tasks()[0]
        assert off_default.to_dict()["strategy"] == "tabu"
        assert off_default.task_id != task.task_id

    def test_own_search_shape_methods_stay_in_their_grid_cell(self):
        """vanilla reports strategy label "none", but aggregation keys
        on the grid axis, so eta joins against it still find the cell."""
        spec = strategy_spec(methods=["vanilla", "clapton"],
                             strategies=["multi_ga"])
        store = ResultStore.ephemeral(spec)
        CampaignRunner(spec, store).run()
        aggregate = CampaignAggregate.from_store(store)
        assert {r["strategy"] for r in aggregate.rows} == {"multi_ga"}
        assert len(aggregate.eta_rows("vanilla")) == 1


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestCli:
    def test_strategies_verb_lists_registry(self, capsys):
        assert main(["strategies"]) == 0
        out = capsys.readouterr().out
        for name in BUILTIN_STRATEGIES:
            assert name in out

    def test_run_with_strategy_and_engine_flags(self, capsys,
                                                monkeypatch):
        monkeypatch.setenv("CLAPTON_BENCH_PRESET", "smoke")
        code = main(["run", "ising_J1.00", "--backend", "nairobi",
                     "--method", "cafqa", "--qubits", "3",
                     "--strategy", "tabu", "--seed", "0",
                     "--engine-instances", "1",
                     "--engine-generations", "4",
                     "--engine-top-k", "2", "--engine-population", "8",
                     "--engine-retry-rounds", "0"])
        out = capsys.readouterr().out
        assert code == 0
        assert "strategy=tabu" in out
        assert "search: tabu" in out

    def test_run_did_you_mean_on_typoed_strategy(self, capsys):
        code = main(["run", "ising_J1.00", "--strategy", "anealing"])
        err = capsys.readouterr().err
        assert code == 2
        assert "did you mean 'annealing'" in err
        assert "repro strategies" in err

    def test_sweep_strategy_override_status_and_resume(self, capsys,
                                                       tmp_path):
        import json

        spec_path = tmp_path / "grid.json"
        spec_path.write_text(json.dumps({
            "name": "cli-strategies",
            "benchmarks": ["ising_J1.00"], "qubit_sizes": [3],
            "noise_scales": [1.0], "methods": ["cafqa"], "seeds": [0],
            "engine_preset": "smoke",
            "engine_overrides": TINY_OVERRIDES,
        }))
        store = str(tmp_path / "grid.campaign")
        code = main(["sweep", str(spec_path), "--store", store,
                     "--strategies", "annealing,restart_climb"])
        out = capsys.readouterr().out
        assert code == 0
        assert "2 tasks" in out
        # resume with the same overrides: everything skipped + reported
        code = main(["sweep", str(spec_path), "--store", store,
                     "--resume", "--strategies",
                     "annealing,restart_climb"])
        out = capsys.readouterr().out
        assert code == 0
        assert "resume: skipping 2 completed task id(s)" in out
        # status surfaces per-strategy progress for multi-strategy grids
        assert main(["status", store]) == 0
        out = capsys.readouterr().out
        assert "annealing" in out and "restart_climb" in out
        assert out.count("1 done") == 2
        # report carries the strategy column
        assert main(["report", store]) == 0
        out = capsys.readouterr().out
        assert "annealing" in out and "restart_climb" in out

    def test_sweep_rejects_unknown_strategy_override(self, capsys,
                                                     tmp_path):
        import json

        spec_path = tmp_path / "grid.json"
        spec_path.write_text(json.dumps({
            "name": "x", "benchmarks": ["ising_J1.00"],
            "qubit_sizes": [3], "noise_scales": [1.0],
            "methods": ["cafqa"], "seeds": [0],
            "engine_preset": "smoke",
            "engine_overrides": TINY_OVERRIDES,
        }))
        code = main(["sweep", str(spec_path), "--strategies", "tabuu"])
        err = capsys.readouterr().err
        assert code == 2
        assert "did you mean 'tabu'" in err
