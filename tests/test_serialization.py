"""Tests for Hamiltonian serialization and random Clifford utilities."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.hamiltonians import ground_state_energy, ising_model, xxz_model
from repro.paulis import PauliSum
from repro.paulis.serialization import (
    load_pauli_sum,
    pauli_sum_from_dict,
    pauli_sum_to_dict,
    save_pauli_sum,
)
from repro.stabilizer import CliffordTableau
from repro.stabilizer.random_clifford import (
    random_clifford_circuit,
    random_clifford_tableau,
    random_pauli_frame,
)


class TestSerialization:
    def test_roundtrip_spin_model(self):
        h = xxz_model(5, 0.5)
        restored = pauli_sum_from_dict(pauli_sum_to_dict(h))
        assert restored.num_qubits == h.num_qubits
        assert restored.num_terms == h.num_terms
        assert ground_state_energy(restored) == pytest.approx(
            ground_state_energy(h))

    def test_roundtrip_file(self, tmp_path):
        h = ising_model(4, 0.25)
        path = tmp_path / "ising.json"
        save_pauli_sum(h, path)
        restored = load_pauli_sum(path)
        a = {p.to_label(): c for c, p in h.terms()}
        b = {p.to_label(): c for c, p in restored.terms()}
        assert a == pytest.approx(b)

    def test_negative_coefficients_roundtrip(self):
        h = PauliSum.from_terms([(-1.5, "XY"), (0.25, "ZI")])
        restored = pauli_sum_from_dict(pauli_sum_to_dict(h))
        labels = {p.to_label(): c for c, p in restored.terms()}
        assert labels == pytest.approx({"XY": -1.5, "ZI": 0.25})

    def test_format_validation(self):
        with pytest.raises(ValueError):
            pauli_sum_from_dict({"format": "other"})
        with pytest.raises(ValueError):
            pauli_sum_from_dict({"format": "repro-pauli-sum", "version": 99})
        with pytest.raises(ValueError):
            pauli_sum_from_dict({"format": "repro-pauli-sum", "version": 1,
                                 "num_qubits": 3,
                                 "terms": [[1.0, "XX"]]})

    @given(st.lists(st.tuples(st.floats(-3, 3, allow_nan=False),
                              st.text("IXYZ", min_size=4, max_size=4)),
                    min_size=1, max_size=8))
    @settings(max_examples=30)
    def test_roundtrip_property(self, terms):
        h = PauliSum.from_terms(terms)
        restored = pauli_sum_from_dict(pauli_sum_to_dict(h))
        a = {p.to_label(): c for c, p in h.terms()}
        b = {p.to_label(): c for c, p in restored.terms()}
        assert set(a) == set(b)
        for key in a:
            assert a[key] == pytest.approx(b[key], abs=1e-12)


class TestRandomClifford:
    def test_circuit_is_clifford(self):
        rng = np.random.default_rng(0)
        for n in (1, 2, 4):
            circ = random_clifford_circuit(n, rng)
            assert circ.is_clifford()

    def test_tableau_preserves_group_structure(self):
        """Random tableaus map commuting pairs to commuting pairs."""
        from repro.paulis import random_pauli

        rng = np.random.default_rng(1)
        tableau = random_clifford_tableau(4, rng)
        for _ in range(10):
            a, b = random_pauli(4, rng), random_pauli(4, rng)
            assert (a.commutes_with(b)
                    == tableau.conjugate_pauli(a).commutes_with(
                        tableau.conjugate_pauli(b)))

    def test_depth_default_scales(self):
        rng = np.random.default_rng(2)
        assert len(random_clifford_circuit(8, rng)) > \
            len(random_clifford_circuit(2, rng))

    def test_pauli_frame_is_pauli_layer(self):
        rng = np.random.default_rng(3)
        frame = random_pauli_frame(5, rng)
        assert all(inst.name in ("x", "y", "z") for inst in frame.instructions)
        assert frame.is_clifford()

    def test_seeded_reproducibility(self):
        a = random_clifford_circuit(3, np.random.default_rng(7))
        b = random_clifford_circuit(3, np.random.default_rng(7))
        assert [(i.name, i.qubits) for i in a.instructions] \
            == [(i.name, i.qubits) for i in b.instructions]
