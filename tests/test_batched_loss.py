"""Batched-vs-serial equivalence: the contract of population batching.

Everything here asserts **bit-identical** floats, not allclose: the batched
paths reuse the serial arithmetic row-by-row (masked LUT conjugation, the
shared backward noise walk), so exact equality is the designed invariant --
it is what lets the GA, the engine, and the estimators switch to batches
without moving a single golden.
"""

import dataclasses

import numpy as np
import pytest

from repro.backends import FakeNairobi
from repro.core import (
    CafqaLoss,
    ClaptonLoss,
    NcafqaLoss,
    VQEProblem,
    transform_table,
    transform_table_many,
)
from repro.execution import ThreadExecutor, make_estimator, memoize_loss
from repro.hamiltonians import ising_model
from repro.noise import NoiseModel
from repro.optim import EngineConfig, GAConfig, GeneticAlgorithm, multi_ga_minimize


def logical_problem(n=4):
    h = ising_model(n, 1.0)
    nm = NoiseModel.uniform(n, depol_1q=1e-3, depol_2q=1e-2,
                            readout=0.02, t1=80e-6)
    return VQEProblem.logical(h, noise_model=nm)


def transpiled_problem(n=4):
    return VQEProblem.from_backend(ising_model(n, 1.0), FakeNairobi())


def genome_batch(rng, count, length):
    return rng.integers(0, 4, size=(count, length))


# ----------------------------------------------------------------------
# Core losses
# ----------------------------------------------------------------------
class TestBatchedLosses:
    @pytest.mark.parametrize("make_problem", [logical_problem,
                                              transpiled_problem])
    def test_clapton_loss_bit_identical(self, make_problem):
        problem = make_problem()
        loss = ClaptonLoss(problem)
        gammas = genome_batch(np.random.default_rng(0), 31,
                              problem.num_transformation_parameters)
        serial = np.array([loss(g) for g in gammas])
        np.testing.assert_array_equal(loss.evaluate_many(gammas), serial)

    @pytest.mark.parametrize("make_problem", [logical_problem,
                                              transpiled_problem])
    @pytest.mark.parametrize("loss_type", [CafqaLoss, NcafqaLoss])
    def test_cafqa_losses_bit_identical(self, make_problem, loss_type):
        problem = make_problem()
        loss = loss_type(problem)
        genomes = genome_batch(np.random.default_rng(1), 23,
                               problem.num_vqe_parameters)
        serial = np.array([loss(g) for g in genomes])
        np.testing.assert_array_equal(loss.evaluate_many(genomes), serial)

    def test_components_many_matches_components(self):
        problem = logical_problem()
        loss = ClaptonLoss(problem, noisy_weight=0.7, noiseless_weight=1.3)
        gammas = genome_batch(np.random.default_rng(2), 9,
                              problem.num_transformation_parameters)
        noisy, noiseless = loss.components_many(gammas)
        for p, gamma in enumerate(gammas):
            n_serial, l_serial = loss.components(gamma)
            assert noisy[p] == n_serial
            assert noiseless[p] == l_serial

    def test_ncafqa_loss_is_noise_aware_cafqa(self):
        problem = logical_problem()
        named = NcafqaLoss(problem)
        flagged = CafqaLoss(problem, noise_aware=True)
        genome = genome_batch(np.random.default_rng(3), 1,
                              problem.num_vqe_parameters)[0]
        assert named(genome) == flagged(genome)

    def test_transform_table_many_stacks_serial_tables(self):
        h = ising_model(5, 0.75)
        gammas = genome_batch(np.random.default_rng(4), 7,
                              4 * 5 + 5)  # circular: 5N genes
        stacked = transform_table_many(h, gammas)
        m = h.table.num_rows
        for p, gamma in enumerate(gammas):
            single = transform_table(h, gamma)
            np.testing.assert_array_equal(stacked.x[p * m:(p + 1) * m],
                                          single.x)
            np.testing.assert_array_equal(stacked.z[p * m:(p + 1) * m],
                                          single.z)
            np.testing.assert_array_equal(
                stacked.phase_exp[p * m:(p + 1) * m], single.phase_exp)

    def test_batch_validation(self):
        problem = logical_problem()
        loss = ClaptonLoss(problem)
        with pytest.raises(ValueError, match="length"):
            loss.evaluate_many(np.zeros((3, 2), dtype=int))
        with pytest.raises(ValueError, match=r"\{0, 1, 2, 3\}"):
            loss.evaluate_many(
                np.full((2, problem.num_transformation_parameters), 7))


# ----------------------------------------------------------------------
# Memoised batch dispatch
# ----------------------------------------------------------------------
class TestMemoizedBatch:
    def test_dedupes_within_batch_and_against_cache(self):
        calls = []

        def loss(genome):
            calls.append(genome.copy())
            return float(np.count_nonzero(genome))

        memo = memoize_loss(loss)
        a, b = np.array([1, 0, 2]), np.array([0, 0, 3])
        assert memo(a) == 2.0  # pre-populate the cache
        values = memo.evaluate_many(np.array([a, b, a, b]))
        np.testing.assert_array_equal(values, [2.0, 1.0, 2.0, 1.0])
        # only the one unseen genome reached the loss
        assert len(calls) == 2
        assert memo.misses == 2 and memo.hits == 3

    def test_counters_match_serial_order(self):
        def loss(genome):
            return float(np.count_nonzero(genome))

        batch = np.random.default_rng(5).integers(0, 2, size=(40, 4))
        batched = memoize_loss(loss)
        batched.evaluate_many(batch)
        serial = memoize_loss(loss)
        serial_values = [serial(g) for g in batch]
        np.testing.assert_array_equal(batched.evaluate_many(batch),
                                      serial_values)
        assert (batched.hits, batched.misses) != (0, 0)
        assert batched.misses == serial.misses

    def test_dispatches_loss_evaluate_many_once(self):
        batch_calls = []

        class BatchLoss:
            def __call__(self, genome):
                raise AssertionError("scalar path must not be used")

            def evaluate_many(self, genomes):
                batch_calls.append(len(genomes))
                return np.count_nonzero(genomes, axis=1).astype(float)

        memo = memoize_loss(BatchLoss())
        genomes = np.array([[1, 1], [0, 1], [1, 1]])
        values = memo.evaluate_many(genomes)
        np.testing.assert_array_equal(values, [2.0, 1.0, 2.0])
        assert batch_calls == [2]  # one call, duplicates already removed

    def test_empty_batch(self):
        memo = memoize_loss(lambda g: 0.0)
        assert len(memo.evaluate_many(np.zeros((0, 3), dtype=int))) == 0

    def test_empty_batch_through_losses_and_estimator(self):
        """A (0, d) batch returns empty results everywhere, not a crash."""
        problem = logical_problem(3)
        for loss, length in ((ClaptonLoss(problem),
                              problem.num_transformation_parameters),
                             (NcafqaLoss(problem),
                              problem.num_vqe_parameters)):
            out = loss.evaluate_many(np.empty((0, length), dtype=np.int64))
            assert out.shape == (0,)
        estimator = make_estimator(problem, mode="clifford")
        batch = estimator.estimate_many(
            np.empty((0, problem.num_vqe_parameters)))
        assert len(batch) == 0 and batch.values.shape == (0,)


# ----------------------------------------------------------------------
# GA + engine on the batched path
# ----------------------------------------------------------------------
class TestBatchedSearch:
    def test_ga_batched_loss_matches_scalar_loss(self):
        """Hiding evaluate_many must not change a single GA number."""
        problem = logical_problem(3)
        loss = ClaptonLoss(problem)
        config = GAConfig(population_size=12, num_generations=6)

        def run(loss_fn):
            ga = GeneticAlgorithm(loss_fn,
                                  problem.num_transformation_parameters,
                                  config=config,
                                  rng=np.random.default_rng(6))
            return ga.run()

        batched = run(loss)           # dispatches via evaluate_many
        scalar = run(lambda g: loss(g))  # scalar-only fallback
        assert batched.best_loss == scalar.best_loss
        np.testing.assert_array_equal(batched.best_genome,
                                      scalar.best_genome)
        np.testing.assert_array_equal(batched.losses, scalar.losses)
        assert batched.num_evaluations == scalar.num_evaluations

    def test_ga_shares_one_cache_discipline(self):
        """GA accounting now lives in the shared MemoizedLoss wrapper."""
        memo = memoize_loss(lambda g: float(np.count_nonzero(g)))
        ga = GeneticAlgorithm(memo, genome_length=4,
                              config=GAConfig(population_size=10,
                                              num_generations=5),
                              rng=np.random.default_rng(7))
        assert ga.cache is memo.cache
        result = ga.run()
        assert result.num_evaluations == memo.misses == len(memo.cache)
        assert memo.hits > 0

    def test_engine_population_axis_bit_identical_to_serial(self):
        problem = logical_problem(3)
        loss = ClaptonLoss(problem)
        config = EngineConfig(num_instances=2, generations_per_round=5,
                              top_k=3, population_size=10, retry_rounds=0,
                              seed=0)
        serial = multi_ga_minimize(loss,
                                   problem.num_transformation_parameters,
                                   config=config)
        sharded_config = dataclasses.replace(config,
                                             parallel_axis="population")
        with ThreadExecutor(3) as executor:
            sharded = multi_ga_minimize(
                loss, problem.num_transformation_parameters,
                config=sharded_config, executor=executor)
        assert sharded.best_loss == serial.best_loss
        np.testing.assert_array_equal(sharded.best_genome,
                                      serial.best_genome)
        assert sharded.num_evaluations == serial.num_evaluations
        assert [r.best_loss for r in sharded.rounds] \
            == [r.best_loss for r in serial.rounds]


# ----------------------------------------------------------------------
# Estimators: every mode's estimate_many against its serial loop
# ----------------------------------------------------------------------
class TestEstimatorBatches:
    def clifford_thetas(self, problem, count, seed):
        rng = np.random.default_rng(seed)
        return rng.integers(0, 4, size=(count,
                                        problem.num_vqe_parameters)) \
            * (np.pi / 2)

    def test_clifford_estimate_many_bit_identical(self):
        problem = logical_problem()
        estimator = make_estimator(problem, mode="clifford")
        thetas = self.clifford_thetas(problem, 19, seed=8)
        serial = [estimator.estimate(t) for t in thetas]
        batch = estimator.estimate_many(thetas)
        np.testing.assert_array_equal(batch.values,
                                      [r.value for r in serial])
        np.testing.assert_array_equal(batch.term_expectations,
                                      np.stack([r.term_expectations
                                                for r in serial]))
        assert estimator.num_evaluations == 2 * len(thetas)

    def test_clifford_estimate_many_transpiled(self):
        problem = transpiled_problem()
        estimator = make_estimator(problem, mode="clifford")
        thetas = self.clifford_thetas(problem, 11, seed=9)
        serial = np.array([estimator.estimate(t).value for t in thetas])
        np.testing.assert_array_equal(estimator.estimate_many(thetas).values,
                                      serial)

    def test_clifford_estimate_many_rejects_non_clifford(self):
        problem = logical_problem()
        estimator = make_estimator(problem, mode="clifford")
        thetas = self.clifford_thetas(problem, 4, seed=10)
        thetas[2, 1] += 0.4
        with pytest.raises(ValueError, match="Clifford parameter point"):
            estimator.estimate_many(thetas)

    def test_exact_shot_noise_draw_order_matches_serial(self):
        """estimate_many must consume the rng exactly like the serial loop.

        The exact engine's chunked tensor evolution reorders float
        summation (allclose-level, unlike the Clifford paths), but its
        Gaussian shot-noise draws must land on points in sequential order:
        a permuted draw order would shift values by O(sigma) ~ 0.1, eleven
        orders of magnitude above the tolerance here.
        """
        problem = logical_problem()
        thetas = np.random.default_rng(11).uniform(
            0, 2 * np.pi, (10, problem.num_vqe_parameters))
        serial_est = make_estimator(problem, mode="exact", shots=128,
                                    seed=12)
        serial = np.array([serial_est.estimate(t).value for t in thetas])
        batch_est = make_estimator(problem, mode="exact", shots=128,
                                   seed=12)
        np.testing.assert_allclose(batch_est.estimate_many(thetas).values,
                                   serial, rtol=0, atol=1e-12)

    def test_shots_mode_estimate_many_matches_serial(self):
        problem = logical_problem(3)
        thetas = np.random.default_rng(13).uniform(
            0, 2 * np.pi, (4, problem.num_vqe_parameters))
        serial_est = make_estimator(problem, mode="shots", shots=256,
                                    seed=14)
        serial = np.array([serial_est.estimate(t).value for t in thetas])
        batch_est = make_estimator(problem, mode="shots", shots=256,
                                   seed=14)
        np.testing.assert_array_equal(batch_est.estimate_many(thetas).values,
                                      serial)


# ----------------------------------------------------------------------
# Estimator seed semantics (the make_estimator fix)
# ----------------------------------------------------------------------
class TestSeedSemantics:
    def test_seed_none_is_fresh_entropy_in_both_sampled_modes(self):
        problem = logical_problem(3)
        theta = np.full(problem.num_vqe_parameters, 0.3)
        for kwargs in ({"mode": "exact", "shots": 64},
                       {"mode": "shots", "shots": 64}):
            a = make_estimator(problem, **kwargs)
            b = make_estimator(problem, **kwargs)
            assert a.energy(theta) != b.energy(theta), kwargs

    def test_explicit_seed_is_reproducible_in_both_sampled_modes(self):
        problem = logical_problem(3)
        theta = np.full(problem.num_vqe_parameters, 0.3)
        for kwargs in ({"mode": "exact", "shots": 64},
                       {"mode": "shots", "shots": 64}):
            a = make_estimator(problem, seed=15, **kwargs)
            b = make_estimator(problem, seed=15, **kwargs)
            assert a.energy(theta) == b.energy(theta), kwargs
