"""Tests for the dense statevector / density-matrix simulators and channels."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.circuits import Circuit
from repro.densesim import (
    DensityMatrixSimulator,
    channels,
    pauli_expectation,
    pauli_sum_expectation,
    simulate_statevector,
)
from repro.paulis import PauliString, PauliSum, random_pauli


def random_circuit(n, depth, rng, clifford_only=False):
    circ = Circuit(n)
    for _ in range(depth):
        if rng.random() < 0.5 and n >= 2:
            a, b = rng.choice(n, size=2, replace=False)
            circ.cx(a, b)
        else:
            kind = ["rx", "ry", "rz"][rng.integers(0, 3)]
            angle = (rng.integers(0, 4) * math.pi / 2 if clifford_only
                     else rng.uniform(0, 2 * math.pi))
            circ.append(kind, [rng.integers(0, n)], [angle])
    return circ


class TestStatevector:
    @given(st.integers(1, 5), st.integers(0, 20), st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_matches_unitary(self, n, depth, seed):
        rng = np.random.default_rng(seed)
        circ = random_circuit(n, depth, rng)
        state = simulate_statevector(circ)
        zero = np.zeros(2 ** n, dtype=complex)
        zero[0] = 1.0
        np.testing.assert_allclose(state, circ.unitary() @ zero, atol=1e-10)

    def test_initial_state(self):
        circ = Circuit(2)
        circ.x(0)
        plus = np.full(4, 0.5, dtype=complex)
        out = simulate_statevector(circ, initial=plus)
        np.testing.assert_allclose(out, plus)  # X just permutes equal amps

    def test_initial_dimension_check(self):
        with pytest.raises(ValueError):
            simulate_statevector(Circuit(2), initial=np.ones(3))

    @given(st.integers(1, 5), st.integers(0, 15), st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_pauli_expectation_matches_dense(self, n, depth, seed):
        rng = np.random.default_rng(seed)
        circ = random_circuit(n, depth, rng)
        state = simulate_statevector(circ)
        p = random_pauli(n, rng)
        expected = np.real(np.vdot(state, p.to_matrix() @ state))
        assert pauli_expectation(p, state) == pytest.approx(expected, abs=1e-9)

    def test_pauli_sum_expectation(self):
        circ = Circuit(2)
        circ.h(0).cx(0, 1)
        state = simulate_statevector(circ)
        h = PauliSum.from_terms([(1.0, "XX"), (1.0, "ZZ"), (1.0, "YY")])
        assert pauli_sum_expectation(h, state) == pytest.approx(1.0)


class TestChannels:
    @pytest.mark.parametrize("ops", [
        channels.depolarizing_kraus(0.1),
        channels.depolarizing_kraus(0.05, num_qubits=2),
        channels.amplitude_damping_kraus(0.3),
        channels.phase_damping_kraus(0.2),
        channels.bitflip_kraus(0.15),
        channels.thermal_relaxation_kraus(1e-7, 5e-5, 7e-5),
    ])
    def test_trace_preserving(self, ops):
        channels.validate_kraus(ops)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            channels.depolarizing_kraus(1.5)
        with pytest.raises(ValueError):
            channels.depolarizing_kraus(0.1, num_qubits=3)
        with pytest.raises(ValueError):
            channels.amplitude_damping_kraus(-0.1)
        with pytest.raises(ValueError):
            channels.thermal_relaxation_kraus(1e-7, 1e-5, 3e-5)  # T2 > 2 T1

    def test_amplitude_damping_decays_excited_state(self):
        sim = DensityMatrixSimulator(1)
        sim.apply_unitary(np.array([[0, 1], [1, 0]], dtype=complex), (0,))
        sim.apply_kraus(channels.amplitude_damping_kraus(0.4), (0,))
        probs = sim.probabilities()
        assert probs[1] == pytest.approx(0.6)
        # |0> is a fixed point
        sim.reset()
        sim.apply_kraus(channels.amplitude_damping_kraus(0.4), (0,))
        assert sim.probabilities()[0] == pytest.approx(1.0)

    def test_depolarizing_shrinks_bloch_vector(self):
        sim = DensityMatrixSimulator(1)
        sim.apply_unitary(channels._I2 * 0 + np.array([[1, 1], [1, -1]]) / math.sqrt(2), (0,))
        p = 0.3
        sim.apply_kraus(channels.depolarizing_kraus(p), (0,))
        x = sim.pauli_expectation(PauliString.from_label("X"))
        assert x == pytest.approx(1 - 4 * p / 3)

    def test_thermal_relaxation_t2_only_dephases(self):
        ops = channels.thermal_relaxation_kraus(1e-7, 1e10, 4e-8)
        sim = DensityMatrixSimulator(1)
        sim.apply_unitary(np.array([[1, 1], [1, -1]]) / math.sqrt(2), (0,))
        sim.apply_kraus(ops, (0,))
        x = sim.pauli_expectation(PauliString.from_label("X"))
        assert x == pytest.approx(math.exp(-1e-7 / 4e-8), abs=1e-6)


class TestDensityMatrix:
    @given(st.integers(1, 4), st.integers(0, 12), st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_pure_evolution_matches_statevector(self, n, depth, seed):
        rng = np.random.default_rng(seed)
        circ = random_circuit(n, depth, rng)
        state = simulate_statevector(circ)
        sim = DensityMatrixSimulator(n)
        sim.apply_circuit(circ)
        np.testing.assert_allclose(sim.rho, np.outer(state, state.conj()),
                                   atol=1e-10)
        assert sim.purity() == pytest.approx(1.0)
        p = random_pauli(n, rng)
        assert sim.pauli_expectation(p) == pytest.approx(
            pauli_expectation(p, state), abs=1e-9)

    def test_kraus_matches_explicit_sum(self):
        rng = np.random.default_rng(1)
        sim = DensityMatrixSimulator(2)
        circ = random_circuit(2, 6, rng)
        sim.apply_circuit(circ)
        rho_before = sim.rho.copy()
        ops = channels.depolarizing_kraus(0.2, num_qubits=2)
        sim.apply_kraus(ops, (0, 1))
        expected = sum(
            _embed(k, 2) @ rho_before @ _embed(k, 2).conj().T for k in ops)
        np.testing.assert_allclose(sim.rho, expected, atol=1e-10)

    def test_trace_preserved_under_noise(self):
        rng = np.random.default_rng(5)
        sim = DensityMatrixSimulator(3)
        circ = random_circuit(3, 10, rng)
        for inst in circ.instructions:
            sim.apply_instruction(inst)
            sim.apply_kraus(channels.depolarizing_kraus(0.05), (inst.qubits[0],))
        assert np.trace(sim.rho).real == pytest.approx(1.0)
        # density matrix stays Hermitian and PSD
        np.testing.assert_allclose(sim.rho, sim.rho.conj().T, atol=1e-10)
        assert np.linalg.eigvalsh(sim.rho).min() > -1e-10

    def test_probabilities_and_sampling(self):
        rng = np.random.default_rng(2)
        sim = DensityMatrixSimulator(2)
        sim.apply_unitary(np.array([[1, 1], [1, -1]]) / math.sqrt(2), (0,))
        probs = sim.probabilities()
        np.testing.assert_allclose(probs, [0.5, 0, 0.5, 0], atol=1e-12)
        counts = sim.sample_counts(2000, rng)
        assert set(counts) <= {"00", "10"}
        assert abs(counts.get("00", 0) - 1000) < 150

    def test_readout_confusion(self):
        sim = DensityMatrixSimulator(1)  # state |0>
        p01 = np.array([0.1])
        p10 = np.array([0.3])
        probs = sim.probabilities_with_readout_error(p01, p10)
        np.testing.assert_allclose(probs, [0.9, 0.1])
        sim.apply_unitary(np.array([[0, 1], [1, 0]], dtype=complex), (0,))
        probs = sim.probabilities_with_readout_error(p01, p10)
        np.testing.assert_allclose(probs, [0.3, 0.7])

    def test_fidelity_with_state(self):
        sim = DensityMatrixSimulator(1)
        plus = np.array([1, 1]) / math.sqrt(2)
        assert sim.fidelity_with_state(plus) == pytest.approx(0.5)


def _embed(k, n):
    from repro.circuits import embed_unitary

    return embed_unitary(k, tuple(range(int(np.log2(k.shape[0])))), n)
