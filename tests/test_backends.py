"""Tests for backends, calibration generation, and hardware twins."""

import networkx as nx
import numpy as np
import pytest

from repro.backends import (
    ALL_BACKENDS,
    EDGES_27Q_FALCON,
    EDGES_7Q_FALCON,
    FakeHanoi,
    FakeLine,
    FakeNairobi,
    FakeToronto,
    PROFILES,
    coupling_graph,
    generate_calibration,
    perturb_calibration,
)


class TestTopologies:
    def test_sizes(self):
        assert coupling_graph(EDGES_7Q_FALCON, 7).number_of_nodes() == 7
        g27 = coupling_graph(EDGES_27Q_FALCON, 27)
        assert g27.number_of_nodes() == 27
        assert g27.number_of_edges() == 28

    def test_connected(self):
        assert nx.is_connected(coupling_graph(EDGES_7Q_FALCON, 7))
        assert nx.is_connected(coupling_graph(EDGES_27Q_FALCON, 27))

    def test_heavy_hex_degree_bound(self):
        g27 = coupling_graph(EDGES_27Q_FALCON, 27)
        assert max(dict(g27.degree).values()) <= 3

    def test_27q_has_length_10_path(self):
        """The paper runs 10-qubit benchmarks on the 27-qubit machines."""
        from repro.transpiler import find_line_layout

        backend = FakeToronto()
        path = find_line_layout(backend, 10)
        assert len(path) == 10
        for a, b in zip(path, path[1:]):
            assert backend.graph.has_edge(a, b)


class TestCalibration:
    def test_deterministic(self):
        a = generate_calibration(EDGES_7Q_FALCON, 7, PROFILES["nairobi"], 1)
        b = generate_calibration(EDGES_7Q_FALCON, 7, PROFILES["nairobi"], 1)
        np.testing.assert_array_equal(a.t1, b.t1)
        assert a.error_2q == b.error_2q

    def test_physical_ranges(self):
        cal = generate_calibration(EDGES_27Q_FALCON, 27, PROFILES["toronto"], 3)
        assert (cal.t1 > 0).all() and (cal.t2 <= 2 * cal.t1 + 1e-12).all()
        assert (cal.error_1q >= 0).all() and (cal.error_1q <= 0.05).all()
        assert all(0 < v <= 0.15 for v in cal.error_2q.values())
        assert (cal.readout_p01 > 0).all() and (cal.readout_p10 > 0).all()

    def test_readout_asymmetry_direction(self):
        cal = generate_calibration(EDGES_7Q_FALCON, 7, PROFILES["hanoi"], 5)
        # decay during readout: 1->0 errors dominate
        assert (cal.readout_p10 > cal.readout_p01).all()

    def test_perturbation_changes_rates_but_not_shape(self):
        cal = generate_calibration(EDGES_7Q_FALCON, 7, PROFILES["hanoi"], 5)
        twin = perturb_calibration(cal, seed=9)
        assert twin.num_qubits == cal.num_qubits
        assert set(twin.error_2q) == set(cal.error_2q)
        assert not np.allclose(twin.t1, cal.t1)
        assert (twin.t2 <= 2 * twin.t1 + 1e-12).all()


class TestBackends:
    @pytest.mark.parametrize("name", list(ALL_BACKENDS))
    def test_construction(self, name):
        backend = ALL_BACKENDS[name]()
        assert backend.name == name
        assert not backend.is_hardware
        expected = 7 if name == "nairobi" else 27
        assert backend.num_qubits == expected

    def test_noise_model_full_register(self):
        backend = FakeNairobi()
        nm = backend.noise_model()
        assert nm.num_qubits == 7
        for a, b in backend.edges:
            assert nm.two_qubit_depol(a, b) == backend.calibration.error_2q[(a, b)]

    def test_noise_model_compact_register(self):
        backend = FakeToronto()
        subset = [3, 5, 8]
        nm = backend.noise_model(subset)
        assert nm.num_qubits == 3
        np.testing.assert_allclose(nm.depol_1q,
                                   backend.calibration.error_1q[subset])
        # edge (3,5) exists on toronto -> mapped to compact (0,1)
        assert nm.two_qubit_depol(0, 1) == backend.calibration.error_2q[(3, 5)]

    def test_hardware_twin(self):
        backend = FakeHanoi()
        twin = backend.hardware_twin(seed=1)
        assert twin.is_hardware
        assert twin.graph is backend.graph
        assert not np.allclose(twin.calibration.t1, backend.calibration.t1)
        nm = twin.twin_noise_model([0, 1, 2])
        assert nm.coherent_zz_angle_2q != 0.0
        # the calibrated model of the twin has no coherent term
        assert twin.noise_model([0, 1, 2]).coherent_zz_angle_2q == 0.0

    def test_fake_line(self):
        backend = FakeLine(12)
        assert backend.num_qubits == 12
        assert nx.is_connected(backend.graph)
        assert backend.graph.has_edge(4, 5)
        assert not backend.graph.has_edge(0, 5)

    def test_device_quality_ordering(self):
        """hanoi (newest) should be cleaner than toronto (oldest 27q)."""
        toronto = FakeToronto().calibration
        hanoi = FakeHanoi().calibration
        assert (np.median(list(hanoi.error_2q.values()))
                < np.median(list(toronto.error_2q.values())))
        assert np.median(hanoi.readout_p01) < np.median(toronto.readout_p01)

    def test_twin_model_schedules_idle_relaxation(self):
        backend = FakeHanoi()
        twin = backend.hardware_twin(seed=2)
        assert twin.twin_noise_model([0, 1]).include_idle_relaxation
        assert not backend.noise_model([0, 1]).include_idle_relaxation
