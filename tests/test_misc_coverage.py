"""Edge-case tests for behaviours not covered by the module suites."""

import numpy as np
import pytest

from repro.backends import FakeToronto
from repro.circuits import Circuit, embed_unitary
from repro.core import VQEProblem, cafqa
from repro.hamiltonians import ising_model
from repro.noise import CliffordNoiseModel, NoiseModel
from repro.optim import EngineConfig, SPSAConfig, minimize_spsa
from repro.vqe import run_vqe

TINY = EngineConfig(num_instances=1, generations_per_round=5, top_k=2,
                    population_size=8, retry_rounds=0, seed=0)


class TestEmbedUnitaryValidation:
    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            embed_unitary(np.eye(4), (0,), 3)

    def test_full_register_identity(self):
        u = embed_unitary(np.eye(8), (0, 1, 2), 3)
        np.testing.assert_allclose(u, np.eye(8))


class TestBackendDefaults:
    def test_depol_2q_default_is_median(self):
        backend = FakeToronto()
        nm = backend.noise_model([0, 1, 2])
        expected = float(np.median(list(backend.calibration.error_2q.values())))
        # (0,2) is not an edge on toronto -> falls back to the median
        assert nm.two_qubit_depol(0, 2) == expected


class TestTwirlCache:
    def test_relaxation_factors_cached(self):
        nm = NoiseModel.uniform(2, depol_1q=1e-3, depol_2q=1e-2, t1=50e-6)
        model = CliffordNoiseModel(nm, include_twirled_relaxation=True)
        a = model._relaxation_factors_by_code(0, 1e-7)
        b = model._relaxation_factors_by_code(0, 1e-7)
        assert a is b  # same array object: cache hit
        c = model._relaxation_factors_by_code(1, 1e-7)
        assert c is not a


class TestSPSAStability:
    def test_explicit_stability_constant(self):
        """Larger A damps early steps: displacement shrinks monotonically."""
        def displacement(big_a):
            result = minimize_spsa(lambda x: float(x @ x), np.ones(2),
                                   SPSAConfig(maxiter=10, a=0.5,
                                              stability_constant=big_a,
                                              seed=0))
            return float(np.linalg.norm(result.x - 1.0))

        assert displacement(1000.0) < displacement(10.0)


class TestVQETraceUtilities:
    def make_trace(self):
        problem = VQEProblem.logical(
            ising_model(3, 1.0),
            noise_model=NoiseModel.uniform(3, depol_1q=1e-3, depol_2q=1e-2,
                                           readout=0.02, t1=80e-6))
        init = cafqa(problem, config=TINY)
        return run_vqe(init, maxiter=20, seed=0)

    def test_running_minimum_monotone(self):
        trace = self.make_trace()
        mins = trace.running_minimum()
        assert len(mins) == 20
        assert all(a >= b for a, b in zip(mins, mins[1:]))
        assert mins[-1] == min(trace.history)

    def test_smoothed_history(self):
        trace = self.make_trace()
        smooth = trace.smoothed_history(window=5)
        assert len(smooth) == 20 - 5 + 1
        assert np.all(np.isfinite(smooth))
        with pytest.raises(ValueError):
            trace.smoothed_history(window=0)


class TestCircuitEdgeCases:
    def test_depth_of_empty_circuit(self):
        assert Circuit(3).depth() == 0

    def test_inverse_of_unbound_rotation_rejected(self):
        from repro.circuits import Parameter

        circ = Circuit(1)
        circ.ry(Parameter(0), 0)
        with pytest.raises(ValueError):
            circ.inverse()

    def test_num_parameters_with_gaps(self):
        from repro.circuits import Parameter

        circ = Circuit(1)
        circ.ry(Parameter(5), 0)
        assert circ.num_parameters == 6  # indices 0..5 expected


class TestPaperScaleLossSanity:
    def test_ten_qubit_chemistry_loss_single_eval(self):
        """One full-scale (10q, 631-term) Clapton loss evaluation stays in
        physical bounds and its two components behave as designed."""
        import pytest
        from repro.backends import FakeToronto
        from repro.chem import molecular_hamiltonian
        from repro.core import ClaptonLoss, VQEProblem

        h = molecular_hamiltonian("LiH", 1.5).hamiltonian
        problem = VQEProblem.from_backend(h, FakeToronto())
        loss = ClaptonLoss(problem)
        gamma = np.zeros(problem.num_transformation_parameters, dtype=int)
        noisy, noiseless = loss.components(gamma)
        # identity transformation: noiseless part is <0|H|0>
        assert noiseless == pytest.approx(h.expectation_all_zeros())
        # attenuation acts toward the traceless mean (identity coefficient)
        constant = h.identity_constant()
        assert abs(noisy - constant) <= abs(noiseless - constant) + 1e-9
