"""Tests for the observability layer: spans, metrics, summary, wiring.

The acceptance-critical behaviors: traced runs are bit-identical to
untraced runs (observability never touches RNG streams or record
contents); ``repro sweep --trace`` produces a trace whose summary
accounts for >=95% of wall-clock; ``GET /metrics`` serves valid
Prometheus text with lease/task/cache counters; and MemoizedLoss
statistics survive ProcessExecutor (aggregated back to the parent).
"""

import json
import threading
import time
import urllib.request
from pathlib import Path

import numpy as np
import pytest

from repro.campaigns import CampaignSpec, ResultStore
from repro.campaigns.runner import execute_task
from repro.campaigns.service import CampaignScheduler, start_server
from repro.campaigns.service.state import ServiceState
from repro.cli import main
from repro.execution import ProcessExecutor, ThreadExecutor
from repro.obs import (
    REGISTRY,
    JsonlTracer,
    MetricRegistry,
    RecordingTracer,
    bucket_of,
    get_tracer,
    render_prometheus,
    render_summary,
    summarize,
    summarize_spans,
    use_tracer,
)
from repro.obs.tracer import NULL_SPAN
from repro.optim import EngineConfig
from repro.search import get_strategy

TINY_OVERRIDES = {"num_instances": 2, "generations_per_round": 6,
                  "top_k": 3, "population_size": 10, "retry_rounds": 0}
TINY = EngineConfig(seed=0, **TINY_OVERRIDES)

#: Run-specific record fields (wall clock, provenance); the rest of a
#: record -- including cache_stats -- must be identical however (and
#: whether) a run was observed.
VOLATILE = {"seconds", "engine_seconds", "total_seconds",
            "duration_seconds", "worker_id"}


def quad_loss(genome) -> float:
    """Cheap synthetic loss (top-level so process pools can pickle it)."""
    g = np.asarray(genome, dtype=float)
    return float(np.sum((g - 1.0) ** 2) + 0.1 * g[0])


def strip_volatile(obj):
    if isinstance(obj, dict):
        return {k: strip_volatile(v) for k, v in obj.items()
                if k not in VOLATILE}
    if isinstance(obj, list):
        return [strip_volatile(v) for v in obj]
    return obj


def tiny_spec(**kwargs) -> CampaignSpec:
    defaults = dict(name="obs", benchmarks=["ising_J1.00"],
                    qubit_sizes=[3], noise_scales=[1.0],
                    methods=["ncafqa", "clapton"], seeds=[0, 1],
                    engine_preset="smoke",
                    engine_overrides={"num_instances": 1,
                                      "generations_per_round": 6,
                                      "top_k": 3, "population_size": 10,
                                      "retry_rounds": 0})
    defaults.update(kwargs)
    return CampaignSpec(**defaults)


class FakeClock:
    def __init__(self, now: float = 1000.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def fake_record(task, status="done"):
    return {"task_id": task.task_id, "status": status, "seconds": 0.0,
            "task": task.to_dict(),
            "result": {"ok": True} if status == "done" else None,
            "error": None if status == "done" else "boom"}


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------
class TestMetrics:
    def test_counter_inc_value_total(self):
        reg = MetricRegistry()
        c = reg.counter("t_total", "help text")
        c.inc()
        c.inc(2, method="clapton")
        assert c.value() == 1
        assert c.value(method="clapton") == 2
        assert c.total() == 3

    def test_counter_rejects_negative(self):
        c = MetricRegistry().counter("t_total")
        with pytest.raises(ValueError, match="only go up"):
            c.inc(-1)

    def test_gauge_set_inc_dec(self):
        g = MetricRegistry().gauge("t_gauge")
        g.set(5, state="done")
        g.inc(2, state="done")
        g.dec(3, state="done")
        assert g.value(state="done") == 4

    def test_histogram_buckets_cumulative(self):
        h = MetricRegistry().histogram("t_seconds", buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 0.7, 5.0):
            h.observe(v)
        assert h.count() == 4
        assert h.sum() == pytest.approx(6.25)
        lines = h._render()
        assert 't_seconds_bucket{le="0.1"} 1' in lines
        assert 't_seconds_bucket{le="1"} 3' in lines
        assert 't_seconds_bucket{le="+Inf"} 4' in lines
        assert "t_seconds_count 4" in lines

    def test_registry_idempotent_and_type_checked(self):
        reg = MetricRegistry()
        a = reg.counter("x_total", "first")
        b = reg.counter("x_total", "second wins nothing")
        assert a is b
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("x_total")
        with pytest.raises(ValueError, match="invalid metric name"):
            reg.counter("bad-name")

    def test_prometheus_rendering(self):
        reg = MetricRegistry()
        c = reg.counter("a_total", "things counted")
        c.inc(3, kind='we"ird')
        reg.gauge("b_gauge").set(1.5)
        text = render_prometheus(reg)
        assert "# HELP a_total things counted" in text
        assert "# TYPE a_total counter" in text
        assert 'a_total{kind="we\\"ird"} 3' in text
        assert "# TYPE b_gauge gauge" in text
        assert "b_gauge 1.5" in text
        assert text.endswith("\n")

    def test_unused_family_renders_zero_sample(self):
        reg = MetricRegistry()
        reg.counter("never_total")
        assert "never_total 0" in render_prometheus(reg)


# ----------------------------------------------------------------------
# Tracer
# ----------------------------------------------------------------------
class TestTracer:
    def test_default_is_shared_noop(self):
        tracer = get_tracer()
        assert not tracer.enabled
        assert tracer.span("x", a=1) is NULL_SPAN
        with tracer.span("x") as span:
            assert span.tag(b=2) is span  # chainable no-op

    def test_span_nesting_links_parents(self):
        tracer = RecordingTracer()
        with tracer.span("root"):
            with tracer.span("child"):
                with tracer.span("grandchild"):
                    pass
            with tracer.span("sibling"):
                pass
        by_name = {s["name"]: s for s in tracer.spans}
        assert by_name["root"]["parent"] is None
        assert by_name["child"]["parent"] == by_name["root"]["id"]
        assert by_name["grandchild"]["parent"] == by_name["child"]["id"]
        assert by_name["sibling"]["parent"] == by_name["root"]["id"]

    def test_threads_get_independent_stacks(self):
        tracer = RecordingTracer()
        barrier = threading.Barrier(2)

        def work(name):
            with tracer.span(name):
                barrier.wait()  # both spans open simultaneously

        threads = [threading.Thread(target=work, args=(f"t{i}",))
                   for i in range(2)]
        with tracer.span("main-root"):
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        by_name = {s["name"]: s for s in tracer.spans}
        # worker-thread spans are roots of their own threads, never
        # children of another thread's open span
        assert by_name["t0"]["parent"] is None
        assert by_name["t1"]["parent"] is None
        assert by_name["t0"]["thread"] != by_name["main-root"]["thread"]

    def test_event_is_finished_child(self):
        tracer = RecordingTracer()
        with tracer.span("parent"):
            tracer.event("loss.shard", 0.25, batch=16)
        by_name = {s["name"]: s for s in tracer.spans}
        event = by_name["loss.shard"]
        assert event["parent"] == by_name["parent"]["id"]
        assert event["dur"] == pytest.approx(0.25)
        assert event["tags"] == {"batch": 16}

    def test_span_tags_become_jsonable(self):
        tracer = RecordingTracer()
        with tracer.span("x", batch=np.int64(7), q=np.float64(1.5),
                         label="clapton", obj=Path("p")):
            pass
        tags = tracer.spans[0]["tags"]
        assert tags == {"batch": 7, "q": 1.5, "label": "clapton",
                        "obj": "p"}
        assert json.dumps(tags)  # round-trips

    def test_jsonl_tracer_writes_meta_then_spans(self, tmp_path):
        path = tmp_path / "deep" / "trace.jsonl"
        with use_tracer(JsonlTracer(path)):
            with get_tracer().span("a"):
                pass
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert lines[0]["kind"] == "meta"
        assert lines[0]["clock"] == "perf_counter"
        assert lines[1]["name"] == "a" and lines[1]["dur"] >= 0

    def test_use_tracer_restores_previous(self):
        before = get_tracer()
        with use_tracer(RecordingTracer()) as tracer:
            assert get_tracer() is tracer
        assert get_tracer() is before


# ----------------------------------------------------------------------
# Summary
# ----------------------------------------------------------------------
def _span(sid, name, start, dur, parent=None):
    return {"kind": "span", "id": sid, "name": name, "start": start,
            "dur": dur, "parent": parent, "thread": "t"}


class TestSummary:
    def test_bucket_classification(self):
        assert bucket_of("loss.evaluate_many") == "loss_eval"
        assert bucket_of("worker.idle") == "idle"
        assert bucket_of("engine.round") == "orchestration"

    def test_self_time_partition(self):
        spans = [_span(1, "cli.sweep", 0.0, 10.0),
                 _span(2, "loss.evaluate_many", 1.0, 6.0, parent=1),
                 _span(3, "campaign.backoff_idle", 8.0, 2.0, parent=1)]
        summary = summarize_spans(spans)
        assert summary.wall_seconds == pytest.approx(10.0)
        assert summary.buckets["loss_eval"] == pytest.approx(6.0)
        assert summary.buckets["idle"] == pytest.approx(2.0)
        assert summary.buckets["orchestration"] == pytest.approx(2.0)
        assert summary.coverage == pytest.approx(1.0)

    def test_tree_aggregates_by_name_path(self):
        spans = [_span(1, "root", 0.0, 4.0),
                 _span(2, "work", 0.0, 1.0, parent=1),
                 _span(3, "work", 1.0, 2.0, parent=1)]
        summary = summarize_spans(spans)
        assert len(summary.roots) == 1
        (work,) = summary.roots[0].children
        assert work.count == 2
        assert work.total == pytest.approx(3.0)

    def test_render_and_to_dict(self):
        spans = [_span(1, "cli.run", 0.0, 2.0),
                 _span(2, "loss.evaluate_many", 0.5, 1.0, parent=1)]
        summary = summarize_spans(spans)
        text = render_summary(summary)
        assert "loss evaluation" in text and "accounted" in text
        assert "cli.run" in text and "loss.evaluate_many" in text
        payload = summary.to_dict()
        assert payload["num_spans"] == 2
        assert payload["tree"][0]["path"] == "cli.run"
        json.dumps(payload)  # JSON-clean


# ----------------------------------------------------------------------
# Instrumentation wiring (engine / search / cache stats)
# ----------------------------------------------------------------------
class TestInstrumentation:
    def test_engine_emits_round_and_loss_spans(self):
        with use_tracer(RecordingTracer()) as tracer:
            get_strategy("multi_ga").minimize(quad_loss, 8, config=TINY)
        names = {s["name"] for s in tracer.spans}
        assert {"search.minimize", "engine.round"} <= names
        rounds = [s for s in tracer.spans if s["name"] == "engine.round"]
        assert all(s["tags"]["evaluations"] > 0 for s in rounds)

    @pytest.mark.parametrize("name", ("annealing", "tabu",
                                      "restart_climb"))
    def test_strategies_emit_round_spans(self, name):
        with use_tracer(RecordingTracer()) as tracer:
            result = get_strategy(name).minimize(quad_loss, 8,
                                                 config=TINY)
        names = [s["name"] for s in tracer.spans]
        assert "search.minimize" in names
        assert names.count("search.round") >= 1
        assert result.cache_stats is not None
        assert result.cache_stats["hits"] + result.cache_stats["misses"] \
            > 0

    def test_tracing_does_not_perturb_search(self):
        plain = get_strategy("multi_ga").minimize(quad_loss, 8,
                                                  config=TINY)
        with use_tracer(RecordingTracer()):
            traced = get_strategy("multi_ga").minimize(quad_loss, 8,
                                                       config=TINY)
        assert np.array_equal(plain.best_genome, traced.best_genome)
        assert plain.best_loss == traced.best_loss
        assert plain.num_evaluations == traced.num_evaluations
        assert plain.cache_stats == traced.cache_stats

    def test_cache_stats_survive_process_executor(self):
        serial = get_strategy("multi_ga").minimize(quad_loss, 8,
                                                   config=TINY)
        with ProcessExecutor(2) as executor:
            sharded = get_strategy("multi_ga").minimize(
                quad_loss, 8, config=TINY, executor=executor)
        assert serial.cache_stats is not None
        assert serial.cache_stats["hits"] > 0
        # the search lands on the same optimum either way...
        assert np.array_equal(serial.best_genome, sharded.best_genome)
        # ...and the child-process counters are shipped back explicitly
        # instead of dying with the pool workers (the counts legitimately
        # differ from serial: each child starts from a memo *snapshot*,
        # so cross-instance hits become misses -- but they are not zero)
        assert sharded.cache_stats is not None
        assert sharded.cache_stats["hits"] > 0
        assert sharded.cache_stats["misses"] > 0

    def test_thread_executor_shards_keep_stats(self):
        serial = get_strategy("annealing").minimize(quad_loss, 8,
                                                    config=TINY)
        with ThreadExecutor(2) as executor:
            sharded = get_strategy("annealing").minimize(
                quad_loss, 8, config=TINY, executor=executor)
        assert sharded.cache_stats == serial.cache_stats

    def test_loss_batch_counters_increment(self):
        batches = REGISTRY.get("repro_loss_batches_total")
        evals = REGISTRY.get("repro_loss_evaluations_total")
        assert batches is not None and evals is not None
        from repro.backends import ALL_BACKENDS
        from repro.core import VQEProblem
        from repro.core.loss import ClaptonLoss
        from repro.hamiltonians import ising_model
        from repro.noise import NoiseModel

        h = ising_model(3, 1.0)
        nm = NoiseModel.uniform(3, depol_1q=1e-3, depol_2q=1e-2,
                                readout=0.02, t1=80e-6)
        problem = VQEProblem.logical(h, noise_model=nm)
        loss = ClaptonLoss(problem)
        before_b, before_e = batches.total(), evals.total()
        rng = np.random.default_rng(0)
        gammas = rng.integers(
            0, 4, size=(5, problem.num_transformation_parameters))
        loss.evaluate_many(gammas)
        assert batches.total() == before_b + 1
        assert evals.total() == before_e + 5


# ----------------------------------------------------------------------
# Golden bit-identity: tracing on == tracing off
# ----------------------------------------------------------------------
class TestBitIdentity:
    def test_task_records_identical_with_tracing(self, tmp_path):
        task = tiny_spec(methods=["clapton"], seeds=[0]).tasks()[0]
        plain = execute_task(task.to_dict())
        with use_tracer(JsonlTracer(tmp_path / "trace.jsonl")) as tracer:
            traced = execute_task(task.to_dict())
        assert strip_volatile(plain) == strip_volatile(traced)
        # and the trace really recorded the work
        spans = [json.loads(l)
                 for l in (tmp_path / "trace.jsonl").read_text()
                 .splitlines()][1:]
        assert any(s["name"] == "loss.evaluate_many" for s in spans)

    def test_cache_stats_in_task_records_are_deterministic(self):
        task = tiny_spec(methods=["clapton"], seeds=[0]).tasks()[0]
        first = execute_task(task.to_dict())
        second = execute_task(task.to_dict())
        stats = first["result"]["runs"]["clapton"]["cache_stats"]
        assert stats is not None and stats["misses"] > 0
        assert stats == second["result"]["runs"]["clapton"]["cache_stats"]


# ----------------------------------------------------------------------
# Scheduler throughput / ETA
# ----------------------------------------------------------------------
class TestSchedulerThroughput:
    def drive(self, tmp_path, clock, advance):
        spec = tiny_spec()
        store = ResultStore.create(tmp_path / "store", spec)
        scheduler = CampaignScheduler(spec, store, clock=clock)
        for _ in range(3):  # 3 of 4 tasks
            task, _lease = scheduler.next_task("w0")
            clock.advance(advance) if advance else None
            scheduler.report("w0", fake_record(task))
        return scheduler

    def test_rate_and_eta_from_completion_window(self, tmp_path):
        clock = FakeClock()
        scheduler = self.drive(tmp_path, clock, advance=2.0)
        counts = scheduler.counts()
        assert counts["tasks_per_second"] == pytest.approx(0.5)
        assert counts["pending"] == 1
        assert counts["eta_seconds"] == pytest.approx(2.0)
        scheduler.close()

    def test_frozen_clock_yields_unknown_rate(self, tmp_path):
        clock = FakeClock()
        scheduler = self.drive(tmp_path, clock, advance=0.0)
        counts = scheduler.counts()
        assert counts["tasks_per_second"] is None
        assert counts["eta_seconds"] is None
        scheduler.close()

    def test_eta_zero_when_nothing_pending(self, tmp_path):
        clock = FakeClock()
        spec = tiny_spec(methods=["clapton"], seeds=[0])
        store = ResultStore.create(tmp_path / "store", spec)
        scheduler = CampaignScheduler(spec, store, clock=clock)
        task, _ = scheduler.next_task("w0")
        scheduler.report("w0", fake_record(task))
        assert scheduler.counts()["eta_seconds"] == 0.0
        scheduler.close()


# ----------------------------------------------------------------------
# Service surface: /metrics, /healthz, status CLI
# ----------------------------------------------------------------------
@pytest.fixture()
def live_service(tmp_path):
    state = ServiceState(root=tmp_path / "root")
    campaign, _ = state.submit(tiny_spec().to_dict())
    # complete the whole grid with synthetic records (no engines)
    while (grant := campaign.scheduler.next_task("w0")) is not None:
        task, _lease = grant
        campaign.scheduler.report("w0", fake_record(task))
    server = start_server(state)
    yield server, campaign
    server.stop()


class TestServiceSurface:
    def test_metrics_endpoint_prometheus(self, live_service):
        server, campaign = live_service
        resp = urllib.request.urlopen(server.url + "/metrics",
                                      timeout=10)
        assert resp.headers["Content-Type"].startswith(
            "text/plain; version=0.0.4")
        text = resp.read().decode()
        for family in ("repro_lease_grants_total",
                       "repro_tasks_completed_total",
                       "repro_cache_hits_total",
                       "repro_task_seconds",
                       "repro_uptime_seconds"):
            assert f"# TYPE {family}" in text, family
        # per-campaign gauge is exact (not polluted by other tests)
        assert (f'repro_campaign_tasks{{campaign="{campaign.id}",'
                f'state="done"}} 4') in text

    def test_healthz_counters_and_uptime(self, live_service):
        server, _ = live_service
        payload = json.loads(urllib.request.urlopen(
            server.url + "/healthz", timeout=10).read().decode())
        assert payload["status"] == "ok"
        assert payload["uptime_seconds"] >= 0
        assert payload["counters"]["lease_grants"] >= 4
        assert payload["counters"]["tasks_completed"] >= 4

    def test_metrics_cli_scraper(self, live_service, capsys):
        server, _ = live_service
        assert main(["metrics", "--connect", server.url]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_tasks_completed_total counter" in out
        assert main(["metrics", "--connect", server.url,
                     "--name", "repro_lease_grants_total"]) == 0
        out = capsys.readouterr().out
        assert "repro_lease_grants_total" in out
        assert "repro_task_seconds" not in out

    def test_status_connect_snapshot(self, live_service, capsys):
        server, campaign = live_service
        assert main(["status", "--connect", server.url]) == 0
        out = capsys.readouterr().out
        assert campaign.id in out
        assert "4/4 done" in out and "eta" in out

    def test_status_connect_watch_stream(self, live_service, capsys):
        server, campaign = live_service
        assert main(["status", "--connect", server.url, "--watch",
                     "--campaign", campaign.id]) == 0
        out = capsys.readouterr().out
        assert "4/4 done" in out

    def test_status_connect_watch_poll(self, live_service, capsys):
        server, _ = live_service
        assert main(["status", "--connect", server.url, "--watch",
                     "--no-stream", "--interval", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "4/4 done" in out

    def test_status_requires_store_or_connect(self, capsys):
        assert main(["status"]) == 2
        assert "--connect" in capsys.readouterr().err

    def test_status_connect_unknown_campaign(self, live_service, capsys):
        server, _ = live_service
        assert main(["status", "--connect", server.url,
                     "--campaign", "nope"]) == 2
        assert "rejected" in capsys.readouterr().err


# ----------------------------------------------------------------------
# End to end: sweep --trace -> trace summary
# ----------------------------------------------------------------------
class TestSweepTraceEndToEnd:
    @pytest.fixture()
    def spec_path(self, tmp_path):
        path = tmp_path / "grid.json"
        path.write_text(json.dumps(
            tiny_spec(seeds=[0], name="trace-e2e").to_dict()))
        return path

    def test_sweep_trace_summary_accounts_wall_clock(self, spec_path,
                                                     capsys):
        store = spec_path.with_suffix(".campaign")
        assert main(["sweep", str(spec_path), "--trace"]) == 0
        out = capsys.readouterr().out
        trace_path = store / "trace.jsonl"
        assert f"trace written to {trace_path}" in out
        assert trace_path.exists()

        summary = summarize(trace_path)
        assert summary.num_spans > 0
        assert summary.roots[0].name == "cli.sweep"
        # acceptance bar: loss-eval + orchestration + idle account for
        # >= 95% of the sweep's wall-clock
        assert summary.coverage >= 0.95
        assert summary.buckets["loss_eval"] > 0

        # cache stats landed in the campaign records
        store_obj = ResultStore.open(store)
        record = store_obj.records()[0]
        method = record["task"]["method"]
        stats = record["result"]["runs"][method]["cache_stats"]
        assert stats["hits"] >= 0 and stats["misses"] > 0
        store_obj.close()

        assert main(["trace", "summary", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "loss evaluation" in out and "cli.sweep" in out
        assert main(["trace", "summary", str(trace_path),
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["coverage"] >= 0.95

    def test_trace_summary_rejects_missing_file(self, tmp_path, capsys):
        assert main(["trace", "summary",
                     str(tmp_path / "nope.jsonl")]) == 2
        assert "cannot read trace" in capsys.readouterr().err

    def test_explicit_trace_path(self, spec_path, tmp_path, capsys):
        target = tmp_path / "custom" / "t.jsonl"
        assert main(["sweep", str(spec_path), "--store",
                     str(tmp_path / "s.campaign"), "--trace",
                     str(target)]) == 0
        assert target.exists()
        assert summarize(target).num_spans > 0
