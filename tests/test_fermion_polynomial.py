"""Unit tests for the internal complex Pauli polynomial (chem.fermion)."""

import numpy as np
import pytest

from repro.chem.fermion import (
    FermionHamiltonian,
    PauliPolynomial,
    jordan_wigner_ladder,
)
from repro.paulis import PAULI_MATRICES


def poly_to_matrix(poly: PauliPolynomial) -> np.ndarray:
    n = poly.num_qubits
    out = np.zeros((2 ** n, 2 ** n), dtype=complex)
    for (xb, zb), coeff in poly.terms.items():
        x = np.frombuffer(xb, dtype=bool)
        z = np.frombuffer(zb, dtype=bool)
        mat = np.array([[1.0 + 0j]])
        for a, b in zip(x, z):
            label = {(0, 0): "I", (1, 0): "X", (1, 1): "Y", (0, 1): "Z"}[
                (int(a), int(b))]
            mat = np.kron(mat, PAULI_MATRICES[label])
        out += coeff * mat
    return out


class TestPauliPolynomial:
    def test_scalar(self):
        poly = PauliPolynomial.scalar(2, 1.5 - 0.5j)
        np.testing.assert_allclose(poly_to_matrix(poly),
                                   (1.5 - 0.5j) * np.eye(4))

    def test_product_matches_dense(self):
        rng = np.random.default_rng(0)
        n = 3
        for _ in range(10):
            a = PauliPolynomial(n)
            b = PauliPolynomial(n)
            for poly in (a, b):
                for _ in range(3):
                    x = rng.integers(0, 2, n).astype(bool)
                    z = rng.integers(0, 2, n).astype(bool)
                    poly.add_term(complex(rng.normal(), rng.normal()), x, z)
            product = a.product(b)
            np.testing.assert_allclose(poly_to_matrix(product),
                                       poly_to_matrix(a) @ poly_to_matrix(b),
                                       atol=1e-10)

    def test_add_and_scale(self):
        n = 2
        a = PauliPolynomial.scalar(n, 1.0)
        b = PauliPolynomial.scalar(n, 2.0)
        a.add(b.scaled(0.5))
        np.testing.assert_allclose(poly_to_matrix(a), 2.0 * np.eye(4))

    def test_to_pauli_sum_rejects_imaginary(self):
        poly = PauliPolynomial.scalar(1, 1j)
        with pytest.raises(ValueError):
            poly.to_pauli_sum()

    def test_to_pauli_sum_drops_tiny_terms(self):
        poly = PauliPolynomial.scalar(1, 1.0)
        x = np.array([True])
        z = np.array([False])
        poly.add_term(1e-15, x, z)
        h = poly.to_pauli_sum()
        assert h.num_terms == 1

    def test_ladder_index_validation(self):
        with pytest.raises(ValueError):
            jordan_wigner_ladder(5, 3, creation=True)


class TestFermionHamiltonianMapping:
    def test_one_body_hermiticity(self):
        """h a†_0 a_1 + h* a†_1 a_0 maps to a Hermitian Pauli sum."""
        n = 3
        one_body = np.zeros((n, n))
        one_body[0, 1] = one_body[1, 0] = 0.7
        ferm = FermionHamiltonian(core_energy=0.0, one_body=one_body,
                                  two_body=np.zeros((n, n, n, n)))
        h = ferm.to_qubits_jordan_wigner()
        mat = h.to_matrix()
        np.testing.assert_allclose(mat, mat.conj().T, atol=1e-12)

    def test_hopping_term_matrix(self):
        """Known JW image: a†_0 a_1 + a†_1 a_0 = (X0X1 + Y0Y1)/2."""
        n = 2
        one_body = np.array([[0.0, 1.0], [1.0, 0.0]])
        ferm = FermionHamiltonian(0.0, one_body, np.zeros((n,) * 4))
        h = ferm.to_qubits_jordan_wigner()
        labels = {p.to_label(): c for c, p in h.terms()}
        assert labels == pytest.approx({"XX": 0.5, "YY": 0.5})

    def test_number_number_interaction(self):
        """<01|01> two-body term maps to n_0 n_1 structure."""
        n = 2
        two_body = np.zeros((n, n, n, n))
        # 1/2 * (<01|01> a†0 a†1 a1 a0 + <10|10> a†1 a†0 a0 a1) = V n0 n1
        two_body[0, 1, 0, 1] = 2.0
        two_body[1, 0, 1, 0] = 2.0
        ferm = FermionHamiltonian(0.0, np.zeros((n, n)), two_body)
        h = ferm.to_qubits_jordan_wigner()
        # n0 n1 = (I - Z0)(I - Z1)/4 * 2.0
        labels = {p.to_label(): c for c, p in h.terms()}
        assert labels == pytest.approx({"II": 0.5, "ZI": -0.5,
                                        "IZ": -0.5, "ZZ": 0.5})

    def test_core_energy_becomes_identity(self):
        ferm = FermionHamiltonian(3.25, np.zeros((2, 2)),
                                  np.zeros((2, 2, 2, 2)))
        h = ferm.to_qubits_jordan_wigner()
        assert h.identity_constant() == pytest.approx(3.25)
