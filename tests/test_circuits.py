"""Tests for the circuit IR, gate library, and ansatz constructions."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.circuits import (
    CLIFFORD_ANGLES,
    Circuit,
    Parameter,
    clapton_transformation_circuit,
    embed_unitary,
    entanglement_pairs,
    get_gate,
    hardware_efficient_ansatz,
    ansatz_skeleton,
    num_transformation_parameters,
)
from repro.circuits.gates import GATES


class TestGates:
    def test_all_static_gates_unitary(self):
        for name, spec in GATES.items():
            if spec.num_params:
                continue
            u = spec.matrix()
            np.testing.assert_allclose(u @ u.conj().T, np.eye(u.shape[0]),
                                       atol=1e-12, err_msg=name)

    def test_rotations_unitary(self):
        for name in ["rx", "ry", "rz"]:
            u = get_gate(name).matrix((0.731,))
            np.testing.assert_allclose(u @ u.conj().T, np.eye(2), atol=1e-12)

    def test_clifford_detection(self):
        assert get_gate("h").is_clifford()
        assert get_gate("ry").is_clifford((math.pi / 2,))
        assert get_gate("ry").is_clifford((0.0,))
        assert not get_gate("ry").is_clifford((0.3,))

    def test_sx_squares_to_x(self):
        sx = get_gate("sx").matrix()
        x = get_gate("x").matrix()
        np.testing.assert_allclose(sx @ sx, x, atol=1e-12)

    def test_s_sdg_inverse(self):
        s, sdg = get_gate("s").matrix(), get_gate("sdg").matrix()
        np.testing.assert_allclose(s @ sdg, np.eye(2), atol=1e-12)

    def test_param_count_enforced(self):
        with pytest.raises(ValueError):
            get_gate("ry").matrix(())
        with pytest.raises(ValueError):
            get_gate("h").matrix((1.0,))

    def test_unknown_gate(self):
        with pytest.raises(ValueError):
            get_gate("toffoli")


class TestEmbedUnitary:
    def test_cx_orderings(self):
        cx = get_gate("cx").matrix()
        # control = qubit 0 (MSB): |10> -> |11>
        full = embed_unitary(cx, (0, 1), 2)
        np.testing.assert_allclose(full, cx)
        # control = qubit 1: |01> -> |11>
        flipped = embed_unitary(cx, (1, 0), 2)
        expected = np.array([[1, 0, 0, 0], [0, 0, 0, 1], [0, 0, 1, 0],
                             [0, 1, 0, 0]], dtype=complex)
        np.testing.assert_allclose(flipped, expected)

    def test_single_qubit_embedding(self):
        x = get_gate("x").matrix()
        full = embed_unitary(x, (1,), 2)
        np.testing.assert_allclose(full, np.kron(np.eye(2), x))
        full = embed_unitary(x, (0,), 2)
        np.testing.assert_allclose(full, np.kron(x, np.eye(2)))

    def test_nonadjacent_two_qubit(self):
        cx = get_gate("cx").matrix()
        full = embed_unitary(cx, (0, 2), 3)
        # |100> -> |101>, |110> -> |111>, zero states fixed
        state = np.zeros(8)
        state[0b100] = 1.0
        out = full @ state
        assert out[0b101] == pytest.approx(1.0)

    def test_embedding_is_unitary(self):
        rng = np.random.default_rng(3)
        mat = np.linalg.qr(rng.normal(size=(4, 4)) + 1j * rng.normal(size=(4, 4)))[0]
        full = embed_unitary(mat, (3, 1), 4)
        np.testing.assert_allclose(full @ full.conj().T, np.eye(16), atol=1e-10)


class TestCircuit:
    def test_build_and_count(self):
        c = Circuit(3)
        c.h(0).cx(0, 1).ry(0.5, 2).swap(1, 2)
        assert len(c) == 4
        assert c.count_ops() == {"h": 1, "cx": 1, "ry": 1, "swap": 1}
        assert c.num_two_qubit_gates() == 2

    def test_depth(self):
        c = Circuit(3)
        c.h(0).h(1).cx(0, 1).h(2)
        assert c.depth() == 2

    def test_validation(self):
        c = Circuit(2)
        with pytest.raises(ValueError):
            c.cx(0, 0)
        with pytest.raises(ValueError):
            c.h(5)
        with pytest.raises(ValueError):
            c.append("cx", [0])

    def test_bind(self):
        c = Circuit(1)
        c.ry(Parameter(0), 0).rz(Parameter(1), 0)
        bound = c.bind([0.1, 0.2])
        assert bound.is_bound
        assert bound.instructions[0].params == (0.1,)
        assert bound.instructions[1].params == (0.2,)
        with pytest.raises(ValueError):
            c.bind([0.1])

    def test_unitary_bell(self):
        c = Circuit(2)
        c.h(0).cx(0, 1)
        state = c.unitary() @ np.array([1, 0, 0, 0], dtype=complex)
        expected = np.array([1, 0, 0, 1]) / math.sqrt(2)
        np.testing.assert_allclose(state, expected, atol=1e-12)

    def test_inverse(self):
        c = Circuit(2)
        c.h(0).s(1).cx(0, 1).ry(0.37, 0).sx(1)
        ident = c.compose(c.inverse()).unitary()
        np.testing.assert_allclose(ident, np.eye(4), atol=1e-12)

    def test_is_clifford(self):
        c = Circuit(2)
        c.h(0).cx(0, 1).ry(math.pi / 2, 1)
        assert c.is_clifford()
        c.ry(0.3, 0)
        assert not c.is_clifford()
        unbound = Circuit(1)
        unbound.ry(Parameter(0), 0)
        assert not unbound.is_clifford()

    def test_compose_mismatch(self):
        with pytest.raises(ValueError):
            Circuit(2).compose(Circuit(3))


class TestAnsatz:
    @pytest.mark.parametrize("n", [2, 3, 4, 7])
    def test_parameter_count_is_4n(self, n):
        a = hardware_efficient_ansatz(n)
        assert a.num_parameters == 4 * n

    def test_entanglement_pairs(self):
        assert entanglement_pairs(2) == [(0, 1)]
        assert entanglement_pairs(4) == [(0, 1), (1, 2), (2, 3), (3, 0)]
        assert entanglement_pairs(4, "linear") == [(0, 1), (1, 2), (2, 3)]

    def test_skeleton_fixes_all_zeros(self):
        skel = ansatz_skeleton(4)
        assert skel.is_clifford()
        state = np.zeros(16, dtype=complex)
        state[0] = 1.0
        np.testing.assert_allclose(skel.unitary() @ state, state, atol=1e-12)

    def test_skeleton_is_cx_ring_only(self):
        skel = ansatz_skeleton(5)
        assert skel.count_ops() == {"cx": 5}

    def test_clifford_angles_give_clifford_ansatz(self):
        rng = np.random.default_rng(0)
        n = 4
        a = hardware_efficient_ansatz(n)
        theta = rng.choice(CLIFFORD_ANGLES, size=4 * n)
        assert a.bind(theta).is_clifford()
        theta[3] = 0.4
        assert not a.bind(theta).is_clifford()

    @pytest.mark.parametrize("n", [2, 3, 5])
    def test_transformation_dimension(self, n):
        assert num_transformation_parameters(n) == 4 * n + len(entanglement_pairs(n))

    @given(st.integers(2, 5), st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_transformation_always_clifford(self, n, seed):
        rng = np.random.default_rng(seed)
        gamma = rng.integers(0, 4, size=num_transformation_parameters(n))
        circ = clapton_transformation_circuit(gamma, n)
        assert circ.is_clifford()

    def test_transformation_slots(self):
        n = 3
        gamma = np.zeros(num_transformation_parameters(n), dtype=int)
        # all-zero genome: identity circuit (all gates skipped)
        assert len(clapton_transformation_circuit(gamma, n)) == 0
        gamma[2 * n + 0] = 1  # CX 0->1
        gamma[2 * n + 1] = 2  # CX 2->1
        gamma[2 * n + 2] = 3  # SWAP (2,0)
        circ = clapton_transformation_circuit(gamma, n)
        names = [(i.name, i.qubits) for i in circ.instructions]
        assert names == [("cx", (0, 1)), ("cx", (2, 1)), ("swap", (2, 0))]

    def test_transformation_validation(self):
        with pytest.raises(ValueError):
            clapton_transformation_circuit([0, 1], 3)
        gamma = np.zeros(num_transformation_parameters(3), dtype=int)
        gamma[0] = 7
        with pytest.raises(ValueError):
            clapton_transformation_circuit(gamma, 3)


class TestLayeredAnsatz:
    def test_reps_one_matches_paper_ansatz(self):
        from repro.circuits import layered_hardware_efficient_ansatz

        n = 4
        deep = layered_hardware_efficient_ansatz(n, reps=1)
        flat = hardware_efficient_ansatz(n)
        assert deep.num_parameters == flat.num_parameters == 4 * n
        assert [(i.name, i.qubits) for i in deep.instructions] \
            == [(i.name, i.qubits) for i in flat.instructions]

    @pytest.mark.parametrize("reps", [0, 2, 3])
    def test_parameter_count(self, reps):
        from repro.circuits import layered_hardware_efficient_ansatz

        n = 5
        circ = layered_hardware_efficient_ansatz(n, reps)
        assert circ.num_parameters == 2 * n * (reps + 1)
        assert circ.num_two_qubit_gates() == reps * len(entanglement_pairs(n))

    def test_zero_point_fixes_all_zeros(self):
        from repro.circuits import layered_hardware_efficient_ansatz

        circ = layered_hardware_efficient_ansatz(3, reps=3)
        bound = circ.bind(np.zeros(circ.num_parameters))
        state = np.zeros(8, dtype=complex)
        state[0] = 1.0
        np.testing.assert_allclose(bound.unitary() @ state, state, atol=1e-12)

    def test_negative_reps_rejected(self):
        from repro.circuits import layered_hardware_efficient_ansatz

        with pytest.raises(ValueError):
            layered_hardware_efficient_ansatz(3, reps=-1)
