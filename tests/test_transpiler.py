"""Tests for layout search, routing, and the transpile pipeline.

The semantic-preservation tests are the load-bearing ones: a transpiled
Clifford circuit, evaluated against the final-layout-mapped Hamiltonian,
must give exactly the logical circuit's energy.
"""

import numpy as np
import pytest

from repro.backends import FakeLine, FakeNairobi, FakeToronto
from repro.circuits import Circuit, hardware_efficient_ansatz
from repro.paulis import PauliSum
from repro.stabilizer import clifford_state_expectation
from repro.transpiler import (
    decompose_swaps,
    embed_pauli_sum,
    find_line_layout,
    route_circuit,
    transpile,
)


class TestLayout:
    def test_line_on_line(self):
        backend = FakeLine(8)
        path = find_line_layout(backend, 8)
        assert sorted(path) == list(range(8))
        for a, b in zip(path, path[1:]):
            assert backend.graph.has_edge(a, b)

    def test_nairobi_7q_line(self):
        backend = FakeNairobi()
        path = find_line_layout(backend, 5)
        assert len(set(path)) == 5
        for a, b in zip(path, path[1:]):
            assert backend.graph.has_edge(a, b)

    def test_single_qubit_layout_picks_best_readout(self):
        backend = FakeNairobi()
        (q,) = find_line_layout(backend, 1)
        readout = backend.calibration.readout_p01 + backend.calibration.readout_p10
        assert q == int(np.argmin(readout))

    def test_impossible_length_raises(self):
        with pytest.raises(ValueError):
            find_line_layout(FakeNairobi(), 8)
        with pytest.raises(ValueError):
            # nairobi has no simple path covering all 7 qubits (star at 1, 5)
            find_line_layout(FakeNairobi(), 7)


class TestRouting:
    def test_adjacent_gates_untouched(self):
        backend = FakeLine(4)
        circ = Circuit(3)
        circ.cx(0, 1).cx(1, 2)
        result = route_circuit(circ, backend.graph, {0: 0, 1: 1, 2: 2})
        assert result.num_swaps == 0
        assert result.final_layout == {0: 0, 1: 1, 2: 2}

    def test_distant_gate_gets_swaps(self):
        backend = FakeLine(5)
        circ = Circuit(2)
        circ.cx(0, 1)
        result = route_circuit(circ, backend.graph, {0: 0, 1: 4})
        assert result.num_swaps == 3
        # logical 0 walked down the line to sit next to physical 4
        assert result.final_layout[0] == 3
        assert result.final_layout[1] == 4

    def test_duplicate_placement_rejected(self):
        backend = FakeLine(3)
        with pytest.raises(ValueError):
            route_circuit(Circuit(2), backend.graph, {0: 1, 1: 1})

    def test_decompose_swaps(self):
        circ = Circuit(3)
        circ.swap(0, 2).h(1)
        out = decompose_swaps(circ)
        assert out.count_ops() == {"cx": 3, "h": 1}
        np.testing.assert_allclose(out.unitary(), circ.unitary(), atol=1e-12)

    def test_routing_preserves_clifford_semantics(self):
        """Routed circuit + final layout == logical circuit, exactly."""
        rng = np.random.default_rng(0)
        backend = FakeLine(6)
        circ = Circuit(4)
        circ.h(0).cx(0, 3).s(2).cx(3, 1).cx(2, 0).cx(1, 2)
        layout = {0: 0, 1: 2, 2: 4, 3: 5}
        result = route_circuit(circ, backend.graph, layout)
        h = PauliSum.from_terms(
            [(float(rng.normal()), "".join(rng.choice(list("IXYZ"), size=4)))
             for _ in range(8)])
        logical_energy = clifford_state_expectation(circ, h)
        positions = [result.final_layout[q] for q in range(4)]
        h_phys = embed_pauli_sum(h, positions, 6)
        routed_energy = clifford_state_expectation(result.circuit, h_phys)
        assert routed_energy == pytest.approx(logical_energy, abs=1e-9)


class TestTranspile:
    @pytest.mark.parametrize("n,backend_factory", [
        (4, FakeNairobi), (6, FakeToronto), (10, FakeToronto)])
    def test_ansatz_transpiles_and_respects_coupling(self, n, backend_factory):
        backend = backend_factory()
        ansatz = hardware_efficient_ansatz(n)
        result = transpile(ansatz, backend)
        assert result.num_qubits <= backend.num_qubits
        # every 2q gate on a coupled pair (in physical ids)
        for inst in result.circuit.instructions:
            if len(inst.qubits) == 2:
                pa = result.physical_qubits[inst.qubits[0]]
                pb = result.physical_qubits[inst.qubits[1]]
                assert backend.graph.has_edge(pa, pb)
        # symbolic parameters preserved
        assert result.circuit.num_parameters == ansatz.num_parameters

    def test_semantics_preserved_clifford(self):
        """theta at Clifford angles: logical and transpiled energies match."""
        rng = np.random.default_rng(7)
        n = 5
        backend = FakeToronto()
        ansatz = hardware_efficient_ansatz(n)
        result = transpile(ansatz, backend)
        theta = rng.integers(0, 4, size=4 * n) * np.pi / 2
        h = PauliSum.from_terms(
            [(float(rng.normal()), "".join(rng.choice(list("IXYZ"), size=n)))
             for _ in range(12)])
        logical = clifford_state_expectation(ansatz.bind(theta), h)
        physical = clifford_state_expectation(
            result.circuit.bind(theta), result.map_hamiltonian(h))
        assert physical == pytest.approx(logical, abs=1e-9)

    def test_noise_model_matches_compact_register(self):
        backend = FakeToronto()
        result = transpile(hardware_efficient_ansatz(6), backend)
        nm = result.noise_model()
        assert nm.num_qubits == result.num_qubits
        sel = result.physical_qubits
        np.testing.assert_allclose(nm.depol_1q,
                                   backend.calibration.error_1q[sel])

    def test_explicit_layout(self):
        backend = FakeLine(6)
        result = transpile(hardware_efficient_ansatz(4), backend,
                           layout=[2, 3, 4, 5])
        assert result.initial_layout[0] == result.physical_qubits.index(2)

    def test_swap_count_positive_for_circular_on_line(self):
        """The wrap-around CX cannot be placed on a pure line without SWAPs."""
        backend = FakeLine(8)
        result = transpile(hardware_efficient_ansatz(8), backend)
        assert result.num_swaps > 0

    def test_embed_pauli_sum_validation(self):
        h = PauliSum.from_terms([(1.0, "XZ")])
        with pytest.raises(ValueError):
            embed_pauli_sum(h, [0, 0], 3)


class TestChainLayoutFallback:
    def test_nairobi_full_device(self):
        """nairobi has no 7-node simple path; the fallback must still place
        the paper's 7-qubit physics benchmarks."""
        from repro.transpiler import find_chain_layout

        backend = FakeNairobi()
        layout = find_chain_layout(backend, 7)
        assert sorted(layout) == list(range(7))

    def test_full_nairobi_ansatz_transpiles_with_semantics(self):
        rng = np.random.default_rng(3)
        n = 7
        backend = FakeNairobi()
        ansatz = hardware_efficient_ansatz(n)
        result = transpile(ansatz, backend)
        theta = rng.integers(0, 4, size=4 * n) * np.pi / 2
        h = PauliSum.from_terms(
            [(float(rng.normal()), "".join(rng.choice(list("IXYZ"), size=n)))
             for _ in range(10)])
        logical = clifford_state_expectation(ansatz.bind(theta), h)
        physical = clifford_state_expectation(
            result.circuit.bind(theta), result.map_hamiltonian(h))
        assert physical == pytest.approx(logical, abs=1e-9)
