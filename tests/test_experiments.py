"""Tests for the experiment presets and runners."""

import numpy as np
import pytest

from repro.core import VQEProblem
from repro.experiments import (
    FAST_ENGINE,
    PAPER_ENGINE,
    SMOKE_ENGINE,
    bench_engine,
    compare_initializations,
    convergence_traces,
    format_comparison_table,
    sweep_relative_improvement,
)
from repro.hamiltonians import ising_model
from repro.noise import NoiseModel
from repro.optim import EngineConfig

TINY = EngineConfig(num_instances=1, generations_per_round=6, top_k=3,
                    population_size=10, retry_rounds=0, seed=0)


class TestPresets:
    def test_paper_preset_matches_section_4_1(self):
        assert PAPER_ENGINE.num_instances == 10
        assert PAPER_ENGINE.generations_per_round == 100
        assert PAPER_ENGINE.top_k == 20
        assert PAPER_ENGINE.population_size == 100
        assert PAPER_ENGINE.retry_rounds == 2

    def test_bench_engine_env_switch(self, monkeypatch):
        monkeypatch.setenv("CLAPTON_BENCH_PRESET", "paper")
        assert bench_engine() is PAPER_ENGINE
        monkeypatch.setenv("CLAPTON_BENCH_PRESET", "smoke")
        assert bench_engine() is SMOKE_ENGINE
        monkeypatch.delenv("CLAPTON_BENCH_PRESET")
        assert bench_engine() is FAST_ENGINE
        monkeypatch.setenv("CLAPTON_BENCH_PRESET", "bogus")
        with pytest.raises(ValueError):
            bench_engine()


class TestRunners:
    def make_problem(self):
        h = ising_model(3, 1.0)
        nm = NoiseModel.uniform(3, depol_1q=1e-3, depol_2q=1e-2,
                                readout=0.02, t1=80e-6)
        return h, VQEProblem.logical(h, noise_model=nm)

    def test_compare_initializations_row(self):
        h, problem = self.make_problem()
        row = compare_initializations("ising3", h, problem, config=TINY)
        assert set(row.evaluations) == {"cafqa", "ncafqa", "clapton"}
        assert np.isfinite(row.eta_initial("cafqa"))
        assert row.e_mixed == pytest.approx(h.mixed_state_energy())
        table = format_comparison_table([row])
        assert "ising3" in table and "eta_vs_cafqa" in table

    def test_compare_with_subset_of_methods(self):
        h, problem = self.make_problem()
        row = compare_initializations("ising3", h, problem, config=TINY,
                                      methods=("cafqa", "clapton"))
        assert set(row.evaluations) == {"cafqa", "clapton"}

    def test_convergence_traces(self):
        h, problem = self.make_problem()
        traces = convergence_traces(h, problem, TINY, vqe_iterations=5,
                                    methods=("cafqa", "clapton"))
        assert set(traces) == {"cafqa", "clapton"}
        for trace in traces.values():
            assert len(trace.history) == 5

    def test_sweep_relative_improvement(self):
        h, _ = self.make_problem()
        models = [NoiseModel.uniform(3, depol_1q=p, depol_2q=10 * p,
                                     readout=0.02, t1=100e-6)
                  for p in (1e-3, 3e-3)]
        with pytest.warns(DeprecationWarning):
            etas = sweep_relative_improvement(h, models, config=TINY)
        assert len(etas) == 2
        assert all(np.isfinite(e) and e > 0 for e in etas)
