"""Tests for the campaign service: leases, scheduler, HTTP, chaos.

The acceptance-critical behavior lives at the bottom: a two-worker
service run whose workers are real subprocesses, one SIGKILL'd while
holding a lease, must complete every grid cell with records identical
(modulo wall clock and worker provenance) to an uninterrupted serial
:class:`CampaignRunner` run.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.campaigns import (
    CampaignRunner,
    CampaignSpec,
    ResultStore,
    RetryPolicy,
)
from repro.campaigns.service import (
    CampaignScheduler,
    HttpSchedulerClient,
    LeaseTable,
    LocalSchedulerClient,
    ServiceState,
    campaign_id,
    run_worker,
    start_server,
)

#: Minimal engine so every campaign task runs in ~100 ms.
TINY_OVERRIDES = {"num_instances": 1, "generations_per_round": 6,
                  "top_k": 3, "population_size": 10, "retry_rounds": 0}


def tiny_spec(**kwargs) -> CampaignSpec:
    defaults = dict(name="svc", benchmarks=["ising_J1.00"],
                    qubit_sizes=[3], noise_scales=[1.0],
                    methods=["ncafqa", "clapton"], seeds=[0, 1],
                    engine_preset="smoke", engine_overrides=TINY_OVERRIDES)
    defaults.update(kwargs)
    return CampaignSpec(**defaults)


#: Run-specific record fields: wall clock and worker provenance.  The
#: deterministic payload (task, result, error, status, attempt,
#: backoff_seconds) must be identical however a campaign was executed.
VOLATILE = {"seconds", "engine_seconds", "total_seconds",
            "duration_seconds", "worker_id"}


def strip_volatile(obj):
    if isinstance(obj, dict):
        return {k: strip_volatile(v) for k, v in obj.items()
                if k not in VOLATILE}
    if isinstance(obj, list):
        return [strip_volatile(v) for v in obj]
    return obj


def canonical_records(store: ResultStore) -> dict:
    # compare the JSON form -- what the log persists -- so in-memory
    # tuples vs wire lists don't produce spurious diffs
    records = json.loads(json.dumps(store.records()))
    return {r["task_id"]: strip_volatile(r) for r in records}


def trace_interval_coverage(spans: list) -> float:
    """Fraction of [first start, last end] covered by the span union."""
    intervals = sorted((s["start"], s["start"] + s["dur"]) for s in spans)
    wall = max(b for _, b in intervals) - intervals[0][0]
    if wall <= 0:
        return 1.0
    covered, (cur_a, cur_b) = 0.0, intervals[0]
    for a, b in intervals[1:]:
        if a > cur_b:
            covered += cur_b - cur_a
            cur_a, cur_b = a, b
        else:
            cur_b = max(cur_b, b)
    covered += cur_b - cur_a
    return covered / wall


def serial_reference(tmp_path: Path, spec: CampaignSpec) -> dict:
    store = ResultStore.create(tmp_path / "serial-ref", spec)
    CampaignRunner(spec, store).run()
    store.close()
    return canonical_records(store)


class FakeClock:
    def __init__(self, now: float = 1000.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def fake_record(task, status="done"):
    return {"task_id": task.task_id, "status": status, "seconds": 0.0,
            "task": task.to_dict(),
            "result": {"ok": True} if status == "done" else None,
            "error": None if status == "done" else "boom"}


# ----------------------------------------------------------------------
# LeaseTable
# ----------------------------------------------------------------------
class TestLeaseTable:
    def test_grant_conflict_release(self, tmp_path):
        clock = FakeClock()
        table = LeaseTable(tmp_path / "leases.jsonl", clock=clock)
        lease = table.lease("t1", "w1", ttl=10.0)
        assert lease.deadline == clock.now + 10.0 and lease.attempt == 1
        assert table.lease("t1", "w2", ttl=10.0) is None  # held
        assert table.lease("t2", "w2", ttl=10.0) is not None
        assert table.release("t1", "w2") is False  # not the holder
        assert table.release("t1", "w1") is True
        assert table.get("t1") is None

    def test_expiry_returns_task_to_pending(self, tmp_path):
        clock = FakeClock()
        table = LeaseTable(tmp_path / "leases.jsonl", clock=clock)
        table.lease("t1", "w1", ttl=5.0)
        clock.advance(4.9)
        assert table.expired() == []
        clock.advance(0.2)
        assert [l.task_id for l in table.expired()] == ["t1"]
        # a new grant over an expired lease succeeds and bumps attempt
        stolen = table.lease("t1", "w2", ttl=5.0)
        assert stolen.worker_id == "w2" and stolen.attempt == 2

    def test_renew_pushes_deadline(self, tmp_path):
        clock = FakeClock()
        table = LeaseTable(tmp_path / "leases.jsonl", clock=clock)
        table.lease("t1", "w1", ttl=5.0)
        clock.advance(4.0)
        renewed = table.renew("t1", "w1", ttl=5.0)
        assert renewed.deadline == clock.now + 5.0
        clock.advance(4.0)  # past the original deadline, not the renewal
        assert table.expired() == []
        assert table.renew("t1", "w2", ttl=5.0) is None  # wrong worker

    def test_event_log_replays_on_open(self, tmp_path):
        clock = FakeClock()
        path = tmp_path / "leases.jsonl"
        table = LeaseTable(path, clock=clock)
        table.lease("t1", "w1", ttl=5.0)
        table.lease("t2", "w1", ttl=5.0)
        table.release("t2")
        table.renew("t1", "w1", ttl=50.0)
        table.close()

        reopened = LeaseTable.open(path, clock=clock)
        assert [l.task_id for l in reopened.active()] == ["t1"]
        assert reopened.get("t1").deadline == clock.now + 50.0
        assert reopened.grants("t1") == 1
        # torn trailing event (crash mid-append) is dropped silently
        with open(path, "a") as fh:
            fh.write('{"event": "lease", "task_id": "t3"')
        assert len(LeaseTable.open(path, clock=clock)) == 1

    def test_held_by_groups_by_worker(self):
        table = LeaseTable(clock=FakeClock())
        table.lease("t1", "w1", 5.0)
        table.lease("t2", "w2", 5.0)
        table.lease("t3", "w1", 5.0)
        assert [l.task_id for l in table.held_by("w1")] == ["t1", "t3"]


# ----------------------------------------------------------------------
# Scheduler
# ----------------------------------------------------------------------
def make_scheduler(spec=None, clock=None, **kwargs):
    spec = spec or tiny_spec()
    clock = clock or FakeClock()
    store = ResultStore.ephemeral(spec)
    scheduler = CampaignScheduler(spec, store, clock=clock,
                                  lease_ttl=kwargs.pop("lease_ttl", 10.0),
                                  **kwargs)
    return scheduler, spec.tasks(), clock


class TestScheduler:
    def test_leases_tasks_in_grid_order(self):
        scheduler, tasks, _ = make_scheduler()
        seen = []
        while (grant := scheduler.next_task("w1")) is not None:
            task, lease = grant
            assert lease.worker_id == "w1"
            seen.append(task.task_id)
        assert seen == [t.task_id for t in tasks]  # all leased, in order
        assert not scheduler.done

    def test_report_completes_and_releases(self):
        scheduler, tasks, _ = make_scheduler()
        for task in tasks:
            grant = scheduler.next_task("w1")
            assert scheduler.report("w1", fake_record(grant[0])) is True
        assert scheduler.done and len(scheduler.leases) == 0
        record = scheduler.store.record(tasks[0].task_id)
        assert record["attempt"] == 1
        assert record["backoff_seconds"] == 0.0
        assert record["worker_id"] == "w1"

    def test_completed_ids_skipped_on_construction(self, tmp_path):
        spec = tiny_spec()
        tasks = spec.tasks()
        store = ResultStore.create(tmp_path / "s", spec)
        store.append(fake_record(tasks[0]))
        scheduler = CampaignScheduler(spec, store, clock=FakeClock())
        granted = {scheduler.next_task("w")[0].task_id
                   for _ in range(len(tasks) - 1)}
        assert tasks[0].task_id not in granted
        assert scheduler.next_task("w") is None

    def test_max_outstanding_backpressure(self):
        scheduler, _, _ = make_scheduler(max_outstanding=2)
        assert scheduler.next_task("w1") is not None
        assert scheduler.next_task("w2") is not None
        assert scheduler.next_task("w3") is None  # bounded
        counts = scheduler.counts()
        assert counts["leased"] == 2

    def test_expired_lease_is_stolen(self):
        scheduler, _, clock = make_scheduler(lease_ttl=5.0)
        task, lease = scheduler.next_task("w1")
        clock.advance(6.0)
        stolen_task, stolen_lease = scheduler.next_task("w2")
        assert stolen_task.task_id == task.task_id
        assert stolen_lease.worker_id == "w2"
        assert stolen_lease.attempt == 2
        assert scheduler.counts()["leases_stolen"] == 1
        # the zombie's heartbeat now fails for that task
        assert scheduler.heartbeat("w1", [task.task_id]) == []

    def test_heartbeat_keeps_slow_worker_alive(self):
        scheduler, _, clock = make_scheduler(lease_ttl=5.0)
        task, _ = scheduler.next_task("w1")
        for _ in range(10):  # 40 simulated seconds of slow execution
            clock.advance(4.0)
            assert scheduler.heartbeat("w1") == [task.task_id]
        assert scheduler.report("w1", fake_record(task)) is True

    def test_duplicate_report_from_zombie_ignored(self):
        scheduler, _, clock = make_scheduler(lease_ttl=5.0)
        task, _ = scheduler.next_task("w1")
        clock.advance(6.0)
        scheduler.next_task("w2")  # steals
        assert scheduler.report("w2", fake_record(task)) is True
        assert scheduler.report("w1", fake_record(task)) is False
        assert scheduler.store.attempts(task.task_id) == 1  # one record

    def test_failed_task_backs_off_then_retries(self):
        retry = RetryPolicy(max_attempts=3, backoff_base=2.0)
        scheduler, tasks, clock = make_scheduler(retry=retry)
        task, _ = scheduler.next_task("w1")
        scheduler.report("w1", fake_record(task, status="failed"))
        # immediately after the failure the task is gated by backoff:
        # other tasks are handed out first
        regrant = scheduler.next_task("w1")
        assert regrant[0].task_id != task.task_id
        # drain the rest so only the backing-off task remains
        drained = [regrant[0]]
        while (g := scheduler.next_task("w1")) is not None:
            drained.append(g[0])
        for t in drained:
            scheduler.report("w1", fake_record(t))
        assert scheduler.next_task("w1") is None
        assert scheduler.counts()["backing_off"] == 1
        clock.advance(2.1)  # past delay(2) = backoff_base
        retried, _ = scheduler.next_task("w1")
        assert retried.task_id == task.task_id
        scheduler.report("w1", fake_record(task, status="failed"))
        record = scheduler.store.record(task.task_id)
        assert record["attempt"] == 2
        assert record["backoff_seconds"] == 2.0

    def test_retries_exhausted_parks_task_as_failed(self):
        retry = RetryPolicy(max_attempts=2, backoff_base=1.0)
        scheduler, tasks, clock = make_scheduler(retry=retry)
        task, _ = scheduler.next_task("w1")
        scheduler.report("w1", fake_record(task, status="failed"))
        clock.advance(10.0)
        for t in tasks:
            grant = scheduler.next_task("w1")
            if grant is None:
                break
            status = ("failed" if grant[0].task_id == task.task_id
                      else "done")
            scheduler.report("w1", fake_record(grant[0], status=status))
        assert scheduler.done  # parked failure counts as terminal
        counts = scheduler.counts()
        assert counts["failed"] == 1
        assert counts["done"] == len(tasks) - 1

    def test_scheduler_crash_recovery_replays_leases(self, tmp_path):
        clock = FakeClock()
        spec = tiny_spec()
        store = ResultStore.create(tmp_path / "s", spec)
        scheduler = CampaignScheduler(spec, store, clock=clock,
                                      lease_ttl=5.0)
        task, _ = scheduler.next_task("w1")
        done_task, _ = scheduler.next_task("w1")
        scheduler.report("w1", fake_record(done_task))
        scheduler.close()  # "crash": in-flight lease never released

        store = ResultStore.open(tmp_path / "s")
        revived = CampaignScheduler(spec, store, clock=clock,
                                    lease_ttl=5.0)
        # the in-flight lease survived the restart...
        assert revived.leases.get(task.task_id).worker_id == "w1"
        # ...and once its deadline passes any worker steals it
        clock.advance(6.0)
        stolen, lease = revived.next_task("w2")
        assert stolen.task_id == task.task_id and lease.attempt == 2
        assert revived.counts()["done"] == 1

    def test_per_strategy_counts(self):
        spec = tiny_spec(strategies=["multi_ga", "restart_climb"],
                         seeds=[0])
        scheduler, tasks, _ = make_scheduler(spec=spec)
        grant = scheduler.next_task("w1")
        scheduler.report("w1", fake_record(grant[0]))
        strategies = scheduler.counts()["strategies"]
        assert strategies["multi_ga"]["done"] == 1
        assert strategies["restart_climb"]["pending"] == 2


# ----------------------------------------------------------------------
# ServiceState + HTTP front end
# ----------------------------------------------------------------------
class TestServiceState:
    def test_submit_is_idempotent(self, tmp_path):
        state = ServiceState(tmp_path / "root")
        spec = tiny_spec()
        first, resumed = state.submit(spec.to_dict())
        assert resumed is False
        again, resumed = state.submit(spec.to_dict())
        assert resumed is True and again is first
        assert first.id == campaign_id(spec)
        assert (tmp_path / "root" / f"{first.id}.campaign").is_dir()

    def test_submit_resumes_on_disk_store(self, tmp_path):
        spec = tiny_spec()
        state = ServiceState(tmp_path / "root")
        campaign, _ = state.submit(spec.to_dict())
        task = spec.tasks()[0]
        campaign.scheduler.next_task("w")
        campaign.scheduler.report("w", fake_record(task))
        state.close()

        fresh = ServiceState(tmp_path / "root")
        campaign, resumed = fresh.submit(spec.to_dict())
        assert resumed is True
        assert campaign.status()["done"] == 1

    def test_get_requires_id_only_when_ambiguous(self, tmp_path):
        state = ServiceState(tmp_path / "root")
        with pytest.raises(KeyError):
            state.get()
        a, _ = state.submit(tiny_spec().to_dict())
        assert state.get() is a
        state.submit(tiny_spec(name="other").to_dict())
        with pytest.raises(KeyError, match="campaign id required"):
            state.get()
        with pytest.raises(KeyError, match="unknown campaign"):
            state.get("nope")

    def test_report_cache_invalidates_on_new_records(self, tmp_path):
        state = ServiceState(tmp_path / "root")
        campaign, _ = state.submit(tiny_spec().to_dict())
        empty = campaign.report()
        assert "No completed tasks yet" in empty
        assert campaign.report() is empty  # cached object, not re-rendered
        with pytest.raises(ValueError, match="unknown report format"):
            campaign.report(fmt="pdf")


def wait_until(predicate, timeout=30.0, interval=0.005):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


class TestServiceEndToEnd:
    def test_http_service_run_matches_serial(self, tmp_path):
        """Submit over HTTP, drain with an HTTP worker, check reports."""
        spec = tiny_spec(seeds=[0])  # 2 tasks
        reference = serial_reference(tmp_path, spec)

        from urllib.error import HTTPError
        from urllib.request import Request, urlopen

        state = ServiceState(tmp_path / "root")
        server = start_server(state, port=0)
        try:
            body = json.dumps(spec.to_dict()).encode()
            with urlopen(Request(
                    server.url + "/campaigns", data=body,
                    headers={"Content-Type": "application/json"})) as r:
                submitted = json.loads(r.read())
            assert submitted["total"] == 2 and not submitted["resumed"]
            cid = submitted["campaign"]

            with urlopen(server.url + "/healthz") as r:
                health = json.loads(r.read())
            assert health["status"] == "ok" and health["campaigns"] == 1

            executed = run_worker(HttpSchedulerClient(server.url),
                                  "http-worker", poll_interval=0.05,
                                  exit_on_idle=True)
            assert executed == 2

            with urlopen(f"{server.url}/status?campaign={cid}") as r:
                status = json.loads(r.read())
            assert status["complete"] and status["done"] == 2

            with urlopen(f"{server.url}/report?campaign={cid}") as r:
                report = r.read().decode()
            assert "# Campaign report: svc" in report
            with urlopen(f"{server.url}/report?campaign={cid}"
                         f"&fmt=csv") as r:
                assert r.read().decode().startswith("benchmark,")

            with pytest.raises(HTTPError) as excinfo:
                urlopen(server.url + "/status?campaign=bogus")
            assert excinfo.value.code == 404
        finally:
            server.stop()

        store = ResultStore.open(
            tmp_path / "root" / f"{campaign_id(spec)}.campaign")
        assert canonical_records(store) == reference

    def test_local_worker_threads_match_serial(self, tmp_path):
        """serve --local-workers path: LocalSchedulerClient threads."""
        import threading

        spec = tiny_spec()  # 4 tasks
        reference = serial_reference(tmp_path, spec)
        state = ServiceState(tmp_path / "root")
        state.submit(spec.to_dict())
        client = LocalSchedulerClient(state)
        threads = [threading.Thread(
            target=run_worker, args=(client,),
            kwargs={"worker_id": f"local-{i}", "poll_interval": 0.02,
                    "exit_on_idle": True}) for i in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert state.all_done
        store = state.get().store
        assert canonical_records(store) == reference
        state.close()


# ----------------------------------------------------------------------
# Chaos: SIGKILL a real worker subprocess mid-campaign
# ----------------------------------------------------------------------
def spawn_worker(url: str, worker_id: str, tmp_path: Path,
                 *extra: str) -> subprocess.Popen:
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[1] / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    log = open(tmp_path / f"{worker_id}.log", "w")
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "worker", "--connect", url,
         "--worker-id", worker_id, "--poll", "0.1", *extra],
        stdout=log, stderr=subprocess.STDOUT, env=env)


class TestWorkerCrashChaos:
    def test_sigkilled_worker_recovers_bit_identical(self, tmp_path):
        """The acceptance chaos test: kill -9 costs one lease timeout.

        Two subprocess workers drive a service campaign; one is
        SIGKILL'd while holding a lease.  The lease must expire, the
        task must be re-run by the survivor, and the final records must
        match an uninterrupted serial run on every deterministic field.
        """
        spec = tiny_spec(seeds=[0, 1, 2])  # 6 tasks
        reference = serial_reference(tmp_path, spec)

        state = ServiceState(tmp_path / "root", lease_ttl=1.5)
        campaign, _ = state.submit(spec.to_dict())
        scheduler = campaign.scheduler
        server = start_server(state, port=0)
        victim = survivor = None
        try:
            victim = spawn_worker(server.url, "victim", tmp_path)
            # the instant the victim owns a lease, kill -9 it (tasks
            # take >= 100 ms; this fires within ~5 ms of the grant)
            assert wait_until(
                lambda: scheduler.leases.held_by("victim"), timeout=60)
            os.kill(victim.pid, signal.SIGKILL)
            victim.wait(timeout=30)
            orphaned = [l.task_id
                        for l in scheduler.leases.held_by("victim")]
            assert orphaned, "victim died without holding a lease"

            survivor = spawn_worker(server.url, "survivor", tmp_path,
                                    "--exit-on-idle")
            assert survivor.wait(timeout=300) == 0
            assert scheduler.done
            # the orphaned lease expired (was not released politely)...
            assert scheduler.counts()["leases_stolen"] >= 1
            # ...and the survivor re-ran the orphaned task(s)
            for tid in orphaned:
                record = scheduler.store.record(tid)
                assert record["status"] == "done"
                assert record["worker_id"] == "survivor"

            # ONE merged fleet trace survives the SIGKILL: the victim
            # loses only its unshipped tail, the survivor's worker.run
            # root keeps inter-task glue on the books, and every
            # worker.task span carries the full correlation tuple
            from repro.obs import parse_trace_lines

            meta, spans = parse_trace_lines(
                campaign.trace_text().splitlines())
            assert meta["merged"] and meta["trace_id"] == \
                campaign.trace_id
            tasks = [s for s in spans if s["name"] == "worker.task"]
            done = {s["tags"]["task_id"] for s in tasks
                    if s["tags"]["worker"] == "survivor"}
            assert set(orphaned) <= done
            for span in tasks:
                tags = span["tags"]
                assert tags["campaign"] == campaign.id
                assert tags["trace"] == campaign.trace_id
                assert tags["task_id"] and tags["worker"]
                assert str(span["id"]).split(":", 1)[0] == \
                    tags["worker"]
            assert trace_interval_coverage(spans) >= 0.95
        finally:
            for proc in (victim, survivor):
                if proc is not None and proc.poll() is None:
                    proc.kill()
            server.stop()

        # record-for-record identity with the uninterrupted serial run
        store = ResultStore.open(campaign.store.path)
        result = canonical_records(store)
        assert set(result) == {t.task_id for t in spec.tasks()}
        assert result == reference
