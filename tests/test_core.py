"""Tests for the Clapton core: transformation, losses, drivers, evaluation."""

import numpy as np
import pytest

from repro.backends import FakeLine, FakeNairobi
from repro.circuits import clapton_transformation_circuit, num_transformation_parameters
from repro.core import (
    CafqaLoss,
    ClaptonLoss,
    VQEProblem,
    cafqa,
    clapton,
    evaluate_initial_point,
    ncafqa,
    transform_hamiltonian,
    untransform_state_circuit,
)
from repro.densesim import noisy_energy, simulate_statevector, pauli_sum_expectation
from repro.hamiltonians import ground_state_energy, ising_model, xxz_model
from repro.noise import CliffordNoiseModel, NoiseModel
from repro.optim import EngineConfig
from repro.stabilizer import clifford_state_expectation

SMALL_ENGINE = EngineConfig(num_instances=2, generations_per_round=12,
                            top_k=5, population_size=24, retry_rounds=1,
                            seed=0)


def small_problem(n=4, noisy=True):
    h = ising_model(n, 0.5)
    nm = (NoiseModel.uniform(n, depol_1q=2e-3, depol_2q=2e-2, readout=0.03,
                             t1=60e-6)
          if noisy else NoiseModel.noiseless(n))
    return VQEProblem.logical(h, noise_model=nm)


class TestTransformation:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_spectrum_preserved(self, seed):
        rng = np.random.default_rng(seed)
        n = 4
        h = xxz_model(n, 1.0)
        gamma = rng.integers(0, 4, size=num_transformation_parameters(n))
        transformed = transform_hamiltonian(h, gamma)
        ev_a = np.linalg.eigvalsh(h.to_matrix())
        ev_b = np.linalg.eigvalsh(transformed.to_matrix())
        np.testing.assert_allclose(ev_a, ev_b, atol=1e-9)

    def test_identity_genome_is_identity(self):
        n = 3
        h = ising_model(n, 0.25)
        gamma = np.zeros(num_transformation_parameters(n), dtype=int)
        transformed = transform_hamiltonian(h, gamma)
        assert {p.to_label(): c for c, p in transformed.terms()} \
            == {p.to_label(): c for c, p in h.terms()}

    def test_untransform_recovers_original_energy(self):
        """<psi_hat| H_hat |psi_hat> == <C psi_hat| H |C psi_hat> (Sec. 3.2)."""
        rng = np.random.default_rng(5)
        n = 3
        h = xxz_model(n, 0.5)
        gamma = rng.integers(0, 4, size=num_transformation_parameters(n))
        transformed = transform_hamiltonian(h, gamma)
        from repro.circuits import Circuit

        vqe_circuit = Circuit(n)
        vqe_circuit.ry(0.7, 0).cx(0, 1).ry(-0.3, 2).cx(1, 2)
        state_hat = simulate_statevector(vqe_circuit)
        energy_hat = pauli_sum_expectation(transformed, state_hat)
        full = untransform_state_circuit(gamma, n, vqe_circuit)
        state = simulate_statevector(full)
        energy = pauli_sum_expectation(h, state)
        assert energy == pytest.approx(energy_hat, abs=1e-9)


class TestClaptonLoss:
    def test_identity_genome_components(self):
        problem = small_problem()
        loss = ClaptonLoss(problem)
        gamma = np.zeros(problem.num_transformation_parameters, dtype=int)
        noisy, noiseless = loss.components(gamma)
        assert noiseless == pytest.approx(
            problem.hamiltonian.expectation_all_zeros())
        expected_noisy = CliffordNoiseModel(problem.noise_model) \
            .noisy_zero_state_energy(problem.skeleton(),
                                     problem.mapped_hamiltonian())
        assert noisy == pytest.approx(expected_noisy, abs=1e-9)

    def test_call_is_weighted_sum(self):
        problem = small_problem()
        loss = ClaptonLoss(problem, noisy_weight=2.0, noiseless_weight=0.5)
        rng = np.random.default_rng(1)
        gamma = rng.integers(0, 4, size=problem.num_transformation_parameters)
        noisy, noiseless = loss.components(gamma)
        assert loss(gamma) == pytest.approx(2.0 * noisy + 0.5 * noiseless)

    def test_noiseless_problem_reduces_to_l0_twice(self):
        problem = small_problem(noisy=False)
        loss = ClaptonLoss(problem)
        rng = np.random.default_rng(2)
        gamma = rng.integers(0, 4, size=problem.num_transformation_parameters)
        noisy, noiseless = loss.components(gamma)
        assert noisy == pytest.approx(noiseless, abs=1e-9)


class TestCafqaLoss:
    def test_zero_genome_is_all_zeros_energy(self):
        problem = small_problem()
        loss = CafqaLoss(problem, noise_aware=False)
        genome = np.zeros(problem.num_vqe_parameters, dtype=int)
        assert loss(genome) == pytest.approx(
            problem.hamiltonian.expectation_all_zeros())

    def test_noiseless_term_matches_statevector(self):
        problem = small_problem()
        loss = CafqaLoss(problem, noise_aware=False)
        rng = np.random.default_rng(3)
        genome = rng.integers(0, 4, size=problem.num_vqe_parameters)
        from repro.circuits import cafqa_angles, hardware_efficient_ansatz

        ansatz = hardware_efficient_ansatz(problem.num_logical_qubits)
        state = simulate_statevector(ansatz.bind(cafqa_angles(genome)))
        expected = pauli_sum_expectation(problem.hamiltonian, state)
        assert loss(genome) == pytest.approx(expected, abs=1e-9)

    def test_noise_aware_adds_noisy_term(self):
        problem = small_problem()
        plain = CafqaLoss(problem, noise_aware=False)
        aware = CafqaLoss(problem, noise_aware=True)
        # zero genome: |0...0> has non-zero Ising energy, so the attenuated
        # noisy term must differ from the noiseless one
        genome = np.zeros(problem.num_vqe_parameters, dtype=int)
        _, l0 = aware.components(genome)
        assert plain(genome) == pytest.approx(l0)
        assert l0 != 0.0
        assert aware(genome) != pytest.approx(plain(genome))


class TestDrivers:
    def test_clapton_end_to_end(self):
        problem = small_problem()
        result = clapton(problem, config=SMALL_ENGINE)
        assert result.method == "clapton"
        # loss at the returned genome reproduces the engine's best loss
        loss = ClaptonLoss(problem)
        assert loss(result.genome) == pytest.approx(result.loss, abs=1e-9)
        # transformed problem keeps the spectrum
        assert ground_state_energy(result.vqe_hamiltonian) == pytest.approx(
            ground_state_energy(problem.hamiltonian), abs=1e-8)
        np.testing.assert_array_equal(result.initial_theta,
                                      np.zeros(problem.num_vqe_parameters))

    def test_cafqa_end_to_end(self):
        problem = small_problem()
        result = cafqa(problem, config=SMALL_ENGINE)
        assert result.method == "cafqa"
        assert result.vqe_hamiltonian is problem.hamiltonian
        # CAFQA finds the optimal Clifford point of the 4-qubit Ising chain:
        # its loss must reach the best stabilizer energy within reach of the
        # ansatz, which is at least as good as the trivial |0...0> energy.
        assert result.loss <= problem.hamiltonian.expectation_all_zeros() + 1e-9

    def test_clapton_beats_cafqa_on_noisy_evaluation(self):
        """The headline claim, in miniature: under device-model evaluation
        the Clapton initial point is at least as good as CAFQA's."""
        problem = small_problem()
        clap = clapton(problem, config=SMALL_ENGINE)
        base = cafqa(problem, config=SMALL_ENGINE)
        e_clap = noisy_energy(clap.initial_circuit(), clap.initial_observable(),
                              problem.noise_model)
        e_base = noisy_energy(base.initial_circuit(), base.initial_observable(),
                              problem.noise_model)
        assert e_clap <= e_base + 1e-6

    def test_ncafqa_noisier_aware_loss(self):
        problem = small_problem()
        result = ncafqa(problem, config=SMALL_ENGINE)
        assert result.method == "ncafqa"
        aware = CafqaLoss(problem, noise_aware=True)
        assert aware(result.genome) == pytest.approx(result.loss, abs=1e-9)

    def test_from_backend_problem(self):
        h = ising_model(4, 1.0)
        problem = VQEProblem.from_backend(h, FakeNairobi())
        result = clapton(problem, config=SMALL_ENGINE)
        evaluation = evaluate_initial_point(result)
        assert evaluation.hardware is None
        # noiseless evaluation can only be degraded by noise... for Clapton
        # the skeleton fixes |0>, so noiseless == L0 of the genome
        loss = ClaptonLoss(problem)
        _, l0 = loss.components(result.genome)
        assert evaluation.noiseless == pytest.approx(l0, abs=1e-9)

    def test_hardware_twin_evaluation(self):
        h = ising_model(3, 0.5)
        backend = FakeNairobi()
        problem = VQEProblem.from_backend(h, backend,
                                          hardware=backend.hardware_twin(seed=3))
        result = clapton(problem, config=SMALL_ENGINE)
        evaluation = evaluate_initial_point(result)
        assert evaluation.hardware is not None
        # the twin's recalibrated rates differ from the optimization model
        assert evaluation.hardware != pytest.approx(evaluation.device_model,
                                                    rel=1e-6)


class TestEvaluation:
    def test_tier_ordering_for_ground_heavy_state(self):
        """For the benchmarks (E0 < 0 side) noise pushes energies up."""
        problem = small_problem()
        result = clapton(problem, config=SMALL_ENGINE)
        ev = evaluate_initial_point(result)
        e0 = ground_state_energy(problem.hamiltonian)
        assert e0 <= ev.noiseless + 1e-9
        assert ev.noiseless <= ev.device_model + 1e-6
        assert ev.model_gap() >= 0
