"""Tests for the Clifford tableau engine and CHP simulator.

The load-bearing checks are property tests comparing every symplectic
operation against dense linear algebra on random Clifford circuits.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.circuits import Circuit, clapton_transformation_circuit, num_transformation_parameters
from repro.paulis import PauliString, PauliSum, PauliTable, random_pauli
from repro.stabilizer import (
    CliffordTableau,
    StabilizerSimulator,
    clifford_state_expectation,
    conjugate_pauli_sum,
    gate_tableau,
    tableau_from_unitary,
)

CLIFFORD_1Q = ["i", "x", "y", "z", "h", "s", "sdg", "sx", "sxdg"]
CLIFFORD_2Q = ["cx", "cz", "swap"]


def random_clifford_circuit(num_qubits: int, depth: int,
                            rng: np.random.Generator) -> Circuit:
    """Random Clifford circuit mixing named gates and Clifford rotations."""
    circ = Circuit(num_qubits)
    for _ in range(depth):
        choice = rng.integers(0, 3)
        if choice == 0 or num_qubits == 1:
            name = CLIFFORD_1Q[rng.integers(0, len(CLIFFORD_1Q))]
            circ.append(name, [rng.integers(0, num_qubits)])
        elif choice == 1:
            name = ["rx", "ry", "rz"][rng.integers(0, 3)]
            angle = rng.integers(0, 4) * math.pi / 2
            circ.append(name, [rng.integers(0, num_qubits)], [angle])
        else:
            a, b = rng.choice(num_qubits, size=2, replace=False)
            circ.append(CLIFFORD_2Q[rng.integers(0, 3)], [a, b])
    return circ


def dense_conjugate(circuit: Circuit, pauli: PauliString) -> np.ndarray:
    u = circuit.unitary()
    return u @ pauli.to_matrix() @ u.conj().T


class TestGateTableaus:
    def test_cx_conjugation_matches_eq3(self):
        t = gate_tableau("cx")
        # Eq. (3): Xc -> Xc Xt, Xt -> Xt, Zc -> Zc, Zt -> Zc Zt
        assert t.conjugate_pauli(PauliString.from_label("XI")).to_label() == "XX"
        assert t.conjugate_pauli(PauliString.from_label("IX")).to_label() == "IX"
        assert t.conjugate_pauli(PauliString.from_label("ZI")).to_label() == "ZI"
        assert t.conjugate_pauli(PauliString.from_label("IZ")).to_label() == "ZZ"

    def test_h_swaps_x_z(self):
        t = gate_tableau("h")
        assert t.conjugate_pauli(PauliString.from_label("X")).to_label() == "Z"
        assert t.conjugate_pauli(PauliString.from_label("Z")).to_label() == "X"
        assert t.conjugate_pauli(PauliString.from_label("Y")).to_label() == "-Y"

    def test_s_rotates_x_to_y(self):
        t = gate_tableau("s")
        assert t.conjugate_pauli(PauliString.from_label("X")).to_label() == "Y"
        assert t.conjugate_pauli(PauliString.from_label("Y")).to_label() == "-X"

    def test_non_clifford_rejected(self):
        with pytest.raises(ValueError):
            gate_tableau("ry", (0.3,))
        with pytest.raises(ValueError):
            tableau_from_unitary(np.array(
                [[1, 0], [0, np.exp(0.25j * math.pi)]], dtype=complex))

    @pytest.mark.parametrize("name", CLIFFORD_1Q + CLIFFORD_2Q)
    def test_all_named_gates_match_dense(self, name):
        t = gate_tableau(name)
        n = t.num_qubits
        circ = Circuit(n)
        circ.append(name, list(range(n)))
        rng = np.random.default_rng(42)
        for _ in range(8):
            p = random_pauli(n, rng)
            image = t.conjugate_pauli(p)
            np.testing.assert_allclose(image.to_matrix(),
                                       dense_conjugate(circ, p), atol=1e-10)


class TestCircuitTableaus:
    @given(st.integers(1, 4), st.integers(0, 25), st.integers(0, 10_000))
    @settings(max_examples=60, deadline=None)
    def test_random_circuit_conjugation_matches_dense(self, n, depth, seed):
        rng = np.random.default_rng(seed)
        circ = random_clifford_circuit(n, depth, rng)
        tableau = CliffordTableau.from_circuit(circ)
        pauli = random_pauli(n, rng)
        image = tableau.conjugate_pauli(pauli)
        np.testing.assert_allclose(image.to_matrix(),
                                   dense_conjugate(circ, pauli), atol=1e-9)

    def test_identity_tableau(self):
        t = CliffordTableau.identity(3)
        p = PauliString.from_label("XYZ")
        assert t.conjugate_pauli(p) == p

    def test_then_composition(self):
        rng = np.random.default_rng(5)
        c1 = random_clifford_circuit(3, 10, rng)
        c2 = random_clifford_circuit(3, 10, rng)
        combined = CliffordTableau.from_circuit(c1.compose(c2))
        chained = CliffordTableau.from_circuit(c1).then(CliffordTableau.from_circuit(c2))
        assert combined == chained

    def test_inverse_circuit_gives_anticonjugation(self):
        rng = np.random.default_rng(8)
        circ = random_clifford_circuit(3, 12, rng)
        p = random_pauli(3, rng)
        forward = CliffordTableau.from_circuit(circ)
        backward = CliffordTableau.from_circuit(circ.inverse())
        assert backward.conjugate_pauli(forward.conjugate_pauli(p)) == p

    def test_batch_matches_single(self):
        rng = np.random.default_rng(11)
        circ = random_clifford_circuit(4, 15, rng)
        tableau = CliffordTableau.from_circuit(circ)
        paulis = [random_pauli(4, rng) for _ in range(20)]
        batch = tableau.conjugate_table(PauliTable.from_paulis(paulis))
        for i, p in enumerate(paulis):
            assert batch.row(i) == tableau.conjugate_pauli(p)

    def test_conjugation_preserves_commutation(self):
        rng = np.random.default_rng(13)
        circ = random_clifford_circuit(4, 20, rng)
        tableau = CliffordTableau.from_circuit(circ)
        for _ in range(10):
            a, b = random_pauli(4, rng), random_pauli(4, rng)
            assert (a.commutes_with(b)
                    == tableau.conjugate_pauli(a).commutes_with(tableau.conjugate_pauli(b)))

    def test_non_clifford_circuit_rejected(self):
        circ = Circuit(2)
        circ.ry(0.3, 0)
        with pytest.raises(ValueError):
            CliffordTableau.from_circuit(circ)


class TestConjugatePauliSum:
    def test_transformed_spectrum_unchanged(self):
        """Clifford conjugation is a similarity transform: eigenvalues equal."""
        rng = np.random.default_rng(3)
        h = PauliSum.from_terms([(1.0, "XXI"), (0.5, "ZZI"), (-0.3, "IYZ"),
                                 (0.8, "ZIZ")])
        circ = random_clifford_circuit(3, 15, rng)
        transformed = conjugate_pauli_sum(circ, h)
        ev_before = np.linalg.eigvalsh(h.to_matrix())
        ev_after = np.linalg.eigvalsh(transformed.to_matrix())
        np.testing.assert_allclose(ev_before, ev_after, atol=1e-9)

    def test_matches_dense_anticonjugation(self):
        rng = np.random.default_rng(4)
        h = PauliSum.from_terms([(0.7, "XY"), (0.2, "ZZ")])
        circ = random_clifford_circuit(2, 10, rng)
        u = circ.unitary()
        expected = u.conj().T @ h.to_matrix() @ u
        np.testing.assert_allclose(conjugate_pauli_sum(circ, h).to_matrix(),
                                   expected, atol=1e-9)


class TestStabilizerSimulator:
    @given(st.integers(1, 4), st.integers(0, 20), st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_statevector_matches_dense(self, n, depth, seed):
        rng = np.random.default_rng(seed)
        circ = random_clifford_circuit(n, depth, rng)
        sim = StabilizerSimulator(n)
        sim.apply_circuit(circ)
        zero = np.zeros(2 ** n, dtype=complex)
        zero[0] = 1.0
        expected = circ.unitary() @ zero
        got = sim.statevector()
        # compare up to global phase
        overlap = abs(np.vdot(expected, got))
        assert overlap == pytest.approx(1.0, abs=1e-8)

    @given(st.integers(1, 4), st.integers(0, 20), st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_expectation_matches_dense(self, n, depth, seed):
        rng = np.random.default_rng(seed)
        circ = random_clifford_circuit(n, depth, rng)
        sim = StabilizerSimulator(n)
        sim.apply_circuit(circ)
        zero = np.zeros(2 ** n, dtype=complex)
        zero[0] = 1.0
        state = circ.unitary() @ zero
        p = random_pauli(n, rng)
        expected = np.real(np.vdot(state, p.to_matrix() @ state))
        assert sim.expectation(p) == pytest.approx(expected, abs=1e-9)

    def test_bell_state_expectations(self):
        sim = StabilizerSimulator(2)
        sim.apply_gate("h", [0])
        sim.apply_gate("cx", [0, 1])
        assert sim.expectation(PauliString.from_label("XX")) == 1.0
        assert sim.expectation(PauliString.from_label("ZZ")) == 1.0
        assert sim.expectation(PauliString.from_label("YY")) == -1.0
        assert sim.expectation(PauliString.from_label("ZI")) == 0.0

    def test_deterministic_measurement(self):
        rng = np.random.default_rng(0)
        sim = StabilizerSimulator(2)
        sim.apply_gate("x", [1])
        assert sim.measure(0, rng) == 0
        assert sim.measure(1, rng) == 1

    def test_random_measurement_statistics(self):
        rng = np.random.default_rng(1)
        outcomes = []
        for _ in range(200):
            sim = StabilizerSimulator(1)
            sim.apply_gate("h", [0])
            outcomes.append(sim.measure(0, rng))
        mean = np.mean(outcomes)
        assert 0.35 < mean < 0.65

    def test_measurement_collapse_correlations(self):
        rng = np.random.default_rng(2)
        for _ in range(20):
            sim = StabilizerSimulator(2)
            sim.apply_gate("h", [0])
            sim.apply_gate("cx", [0, 1])
            a = sim.measure(0, rng)
            b = sim.measure(1, rng)
            assert a == b

    def test_apply_pauli_flips_expectation(self):
        sim = StabilizerSimulator(1)
        assert sim.expectation(PauliString.from_label("Z")) == 1.0
        sim.apply_pauli(PauliString.from_label("X"))
        assert sim.expectation(PauliString.from_label("Z")) == -1.0

    def test_expectation_sum(self):
        sim = StabilizerSimulator(2)
        sim.apply_gate("x", [0])
        h = PauliSum.from_terms([(1.0, "ZI"), (2.0, "IZ"), (3.0, "XX")])
        assert sim.expectation_sum(h) == pytest.approx(-1.0 + 2.0)


class TestCliffordStateExpectation:
    @given(st.integers(2, 4), st.integers(0, 20), st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_matches_simulator(self, n, depth, seed):
        rng = np.random.default_rng(seed)
        circ = random_clifford_circuit(n, depth, rng)
        terms = [(rng.normal(), "".join(rng.choice(list("IXYZ"), size=n)))
                 for _ in range(5)]
        h = PauliSum.from_terms(terms)
        sim = StabilizerSimulator(n)
        sim.apply_circuit(circ)
        assert clifford_state_expectation(circ, h) == pytest.approx(
            sim.expectation_sum(h), abs=1e-9)

    def test_transformation_ansatz_expectation(self):
        rng = np.random.default_rng(9)
        n = 4
        gamma = rng.integers(0, 4, size=num_transformation_parameters(n))
        circ = clapton_transformation_circuit(gamma, n)
        h = PauliSum.from_terms([(1.0, "ZZII"), (0.5, "XXII"), (1.0, "IIZZ")])
        sim = StabilizerSimulator(n)
        sim.apply_circuit(circ)
        assert clifford_state_expectation(circ, h) == pytest.approx(
            sim.expectation_sum(h))


class TestMeasurementSemantics:
    def test_ghz_chain_measurements_agree(self):
        rng = np.random.default_rng(21)
        for _ in range(10):
            n = 5
            sim = StabilizerSimulator(n)
            sim.apply_gate("h", [0])
            for k in range(n - 1):
                sim.apply_gate("cx", [k, k + 1])
            outcomes = sim.measure_all(rng)
            assert len(set(outcomes.tolist())) == 1  # all zeros or all ones

    def test_measurement_is_idempotent(self):
        rng = np.random.default_rng(22)
        sim = StabilizerSimulator(3)
        sim.apply_gate("h", [0])
        sim.apply_gate("cx", [0, 1])
        first = sim.measure(0, rng)
        for _ in range(5):
            assert sim.measure(0, rng) == first

    def test_expectation_consistent_with_collapse(self):
        """After measuring qubit 0 of a Bell pair, <Z0> is deterministic."""
        rng = np.random.default_rng(23)
        sim = StabilizerSimulator(2)
        sim.apply_gate("h", [0])
        sim.apply_gate("cx", [0, 1])
        assert sim.expectation(PauliString.from_label("ZI")) == 0.0
        outcome = sim.measure(0, rng)
        expected = 1.0 if outcome == 0 else -1.0
        assert sim.expectation(PauliString.from_label("ZI")) == expected
        assert sim.expectation(PauliString.from_label("IZ")) == expected

    def test_reset_restores_zero_state(self):
        rng = np.random.default_rng(24)
        sim = StabilizerSimulator(2)
        sim.apply_gate("h", [0])
        sim.measure(0, rng)
        sim.reset()
        assert sim.expectation(PauliString.from_label("ZI")) == 1.0
        assert sim.expectation(PauliString.from_label("IZ")) == 1.0

    def test_x_basis_statistics(self):
        """Measuring |+> in Z gives ~50/50 over many fresh preparations."""
        rng = np.random.default_rng(25)
        ones = 0
        for _ in range(400):
            sim = StabilizerSimulator(1)
            sim.apply_gate("h", [0])
            ones += sim.measure(0, rng)
        assert 140 < ones < 260
