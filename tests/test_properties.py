"""Cross-cutting property-based tests (hypothesis).

These pin the algebraic invariants the whole reproduction rests on:
similarity-transform spectrum preservation, inverse-cancellation of
conjugations, monotonicity of noise attenuation, and structural invariants
of the optimization engine -- each quantified over randomized inputs rather
than hand-picked examples.
"""

import math

import numpy as np
import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.circuits import (
    Circuit,
    clapton_transformation_circuit,
    num_transformation_parameters,
)
from repro.core import transform_hamiltonian
from repro.core.transformation import transformation_tableau
from repro.hamiltonians import ising_model, xxz_model
from repro.noise import CliffordNoiseModel, NoiseModel
from repro.paulis import PauliSum, PauliTable, random_pauli
from repro.stabilizer import CliffordTableau
from repro.stabilizer.random_clifford import random_clifford_circuit

genomes = st.integers(0, 2 ** 32 - 1)


def random_hamiltonian(n, m, rng):
    labels = ["".join(rng.choice(list("IXYZ"), size=n)) for _ in range(m)]
    return PauliSum.from_terms([(float(rng.normal()), l) for l in labels])


class TestTransformationProperties:
    @given(st.integers(2, 5), genomes)
    @settings(max_examples=25, deadline=None)
    def test_spectrum_invariance(self, n, seed):
        rng = np.random.default_rng(seed)
        h = random_hamiltonian(n, 6, rng)
        gamma = rng.integers(0, 4, size=num_transformation_parameters(n))
        transformed = transform_hamiltonian(h, gamma)
        np.testing.assert_allclose(
            np.linalg.eigvalsh(h.to_matrix()),
            np.linalg.eigvalsh(transformed.to_matrix()), atol=1e-8)

    @given(st.integers(2, 5), genomes)
    @settings(max_examples=25, deadline=None)
    def test_forward_backward_cancellation(self, n, seed):
        """Anticonjugation followed by conjugation is the identity."""
        rng = np.random.default_rng(seed)
        gamma = rng.integers(0, 4, size=num_transformation_parameters(n))
        circuit = clapton_transformation_circuit(gamma, n)
        forward = CliffordTableau.from_circuit(circuit)
        backward = transformation_tableau(gamma, n)
        p = random_pauli(n, rng)
        assert forward.conjugate_pauli(backward.conjugate_pauli(p)) == p

    @given(st.integers(2, 4), genomes)
    @settings(max_examples=20, deadline=None)
    def test_coefficient_magnitudes_preserved(self, n, seed):
        """Conjugation permutes terms and flips signs, never rescales."""
        rng = np.random.default_rng(seed)
        h = random_hamiltonian(n, 5, rng)
        gamma = rng.integers(0, 4, size=num_transformation_parameters(n))
        transformed = transform_hamiltonian(h, gamma)
        assert transformed.num_terms == h.num_terms
        np.testing.assert_allclose(
            np.sort(np.abs(transformed.coefficients)),
            np.sort(np.abs(h.coefficients)), atol=1e-12)

    @given(st.integers(2, 4), genomes)
    @settings(max_examples=20, deadline=None)
    def test_double_transform_composes(self, n, seed):
        """Transforming twice equals transforming by the composed circuit."""
        rng = np.random.default_rng(seed)
        h = random_hamiltonian(n, 4, rng)
        g1 = rng.integers(0, 4, size=num_transformation_parameters(n))
        g2 = rng.integers(0, 4, size=num_transformation_parameters(n))
        step = transform_hamiltonian(transform_hamiltonian(h, g1), g2)
        c1 = clapton_transformation_circuit(g1, n)
        c2 = clapton_transformation_circuit(g2, n)
        from repro.stabilizer import conjugate_pauli_sum

        # C2†(C1† H C1)C2 = (C1 C2)† H (C1 C2); the circuit realizing the
        # operator product C1*C2 applies C2 first, i.e. c2.compose(c1)
        composed = conjugate_pauli_sum(c2.compose(c1), h)
        a = {p.to_label(): c for c, p in step.terms()}
        b = {p.to_label(): c for c, p in composed.terms()}
        assert set(a) == set(b)
        for key in a:
            assert a[key] == pytest.approx(b[key], abs=1e-10)


class TestTableauGroupProperties:
    @given(st.integers(1, 4), genomes)
    @settings(max_examples=25, deadline=None)
    def test_then_associative(self, n, seed):
        rng = np.random.default_rng(seed)
        t1 = CliffordTableau.from_circuit(random_clifford_circuit(n, rng, 8))
        t2 = CliffordTableau.from_circuit(random_clifford_circuit(n, rng, 8))
        t3 = CliffordTableau.from_circuit(random_clifford_circuit(n, rng, 8))
        assert t1.then(t2).then(t3) == t1.then(t2.then(t3))

    @given(st.integers(1, 4), genomes)
    @settings(max_examples=25, deadline=None)
    def test_identity_neutral(self, n, seed):
        rng = np.random.default_rng(seed)
        t = CliffordTableau.from_circuit(random_clifford_circuit(n, rng, 10))
        identity = CliffordTableau.identity(n)
        assert t.then(identity) == t
        assert identity.then(t) == t

    @given(st.integers(1, 4), genomes)
    @settings(max_examples=25, deadline=None)
    def test_conjugation_is_linear_on_products(self, n, seed):
        """C (PQ) C† = (C P C†)(C Q C†) including phases."""
        rng = np.random.default_rng(seed)
        t = CliffordTableau.from_circuit(random_clifford_circuit(n, rng, 10))
        p, q = random_pauli(n, rng), random_pauli(n, rng)
        assert t.conjugate_pauli(p * q) == \
            t.conjugate_pauli(p) * t.conjugate_pauli(q)


class TestNoiseProperties:
    @given(st.floats(0.0, 0.05), st.floats(0.0, 0.05), genomes)
    @settings(max_examples=25, deadline=None)
    def test_attenuation_monotone_in_gate_error(self, p_small, p_extra, seed):
        """More depolarizing noise never increases |noisy energy| of a fixed
        Z-type observable at theta = 0."""
        rng = np.random.default_rng(seed)
        n = 4
        from repro.circuits import ansatz_skeleton

        circ = ansatz_skeleton(n)
        h = PauliSum.from_terms([(1.0, "ZZZZ"), (0.5, "ZIIZ")])
        nm1 = NoiseModel.uniform(n, depol_1q=p_small, depol_2q=p_small,
                                 readout=0.0, t1=None)
        nm2 = NoiseModel.uniform(n, depol_1q=p_small + p_extra,
                                 depol_2q=p_small + p_extra,
                                 readout=0.0, t1=None)
        v1 = CliffordNoiseModel(nm1).noisy_zero_state_energy(circ, h)
        v2 = CliffordNoiseModel(nm2).noisy_zero_state_energy(circ, h)
        assert abs(v2) <= abs(v1) + 1e-12

    @given(st.floats(0.0, 0.4), st.floats(0.0, 0.4))
    @settings(max_examples=25, deadline=None)
    def test_readout_attenuation_formula(self, p01, p10):
        nm = NoiseModel(num_qubits=1, depol_1q=0.0, depol_2q_default=0.0,
                        readout_p01=np.array([p01]),
                        readout_p10=np.array([p10]))
        assert nm.readout_z_attenuation()[0] == pytest.approx(1 - p01 - p10)
        assert nm.symmetric_readout_flip()[0] == pytest.approx((p01 + p10) / 2)

    @given(st.floats(1e-7, 5e-4), st.floats(1e-5, 3e-4))
    @settings(max_examples=25, deadline=None)
    def test_twirled_relaxation_valid_distribution(self, duration, t1):
        from repro.noise import twirled_relaxation_probabilities

        t2 = 1.5 * t1
        probs = twirled_relaxation_probabilities(duration, t1, min(t2, 2 * t1))
        assert probs.sum() == pytest.approx(1.0, abs=1e-9)
        assert (probs >= -1e-12).all()

    @given(st.integers(2, 5), genomes)
    @settings(max_examples=15, deadline=None)
    def test_noiseless_model_is_exact_expectation(self, n, seed):
        rng = np.random.default_rng(seed)
        circ = random_clifford_circuit(n, rng, 10)
        h = random_hamiltonian(n, 5, rng)
        from repro.stabilizer import clifford_state_expectation

        model = CliffordNoiseModel(NoiseModel.noiseless(n))
        assert model.noisy_zero_state_energy(circ, h) == pytest.approx(
            clifford_state_expectation(circ, h), abs=1e-9)


class TestHamiltonianProperties:
    @given(st.integers(2, 8), st.floats(0.05, 2.0))
    @settings(max_examples=20, deadline=None)
    def test_spin_models_hermitian_and_bounded(self, n, coupling):
        for h in (ising_model(n, coupling), xxz_model(n, coupling)):
            # energy of |0...0> must lie within the extremal eigenvalues
            from repro.hamiltonians import ground_state_energy

            e0 = ground_state_energy(h)
            zero = h.expectation_all_zeros()
            assert e0 <= zero + 1e-9
            total_weight = float(np.abs(h.coefficients).sum())
            assert abs(e0) <= total_weight + 1e-9

    @given(st.integers(2, 6), st.floats(0.05, 2.0))
    @settings(max_examples=15, deadline=None)
    def test_ising_zero_state_energy_closed_form(self, n, coupling):
        """<0|H_ising|0> = n (all Z terms +1, XX terms vanish)."""
        h = ising_model(n, coupling)
        assert h.expectation_all_zeros() == pytest.approx(n)

    @given(st.integers(2, 6), st.floats(0.05, 2.0))
    @settings(max_examples=15, deadline=None)
    def test_xxz_zero_state_energy_closed_form(self, n, coupling):
        """<0|H_xxz|0> = n - 1 (ZZ bonds +1, XX/YY vanish)."""
        h = xxz_model(n, coupling)
        assert h.expectation_all_zeros() == pytest.approx(n - 1)
