"""Tests for the GA, the Figure-4 engine, and SPSA on toy objectives."""

import numpy as np
import pytest

from repro.optim import (
    EngineConfig,
    GAConfig,
    GeneticAlgorithm,
    SPSAConfig,
    minimize_spsa,
    multi_ga_minimize,
)


def count_nonzero_loss(genome):
    """Global minimum 0 at the all-zeros genome."""
    return float(np.count_nonzero(genome))


def target_match_loss(target):
    def loss(genome):
        return float(np.sum(genome != target))
    return loss


class TestGeneticAlgorithm:
    def test_finds_trivial_optimum(self):
        rng = np.random.default_rng(0)
        ga = GeneticAlgorithm(count_nonzero_loss, genome_length=12,
                              config=GAConfig(population_size=40,
                                              num_generations=60), rng=rng)
        result = ga.run()
        assert result.best_loss == 0.0
        assert np.all(result.best_genome == 0)

    def test_finds_arbitrary_target(self):
        rng = np.random.default_rng(1)
        target = rng.integers(0, 4, size=10)
        ga = GeneticAlgorithm(target_match_loss(target), genome_length=10,
                              config=GAConfig(population_size=50,
                                              num_generations=80), rng=rng)
        result = ga.run()
        assert result.best_loss == 0.0

    def test_history_monotone(self):
        rng = np.random.default_rng(2)
        ga = GeneticAlgorithm(count_nonzero_loss, genome_length=20,
                              config=GAConfig(population_size=30,
                                              num_generations=30), rng=rng)
        result = ga.run()
        assert all(a >= b for a, b in zip(result.history, result.history[1:]))

    def test_cache_prevents_reevaluation(self):
        calls = []

        def counting_loss(genome):
            calls.append(1)
            return count_nonzero_loss(genome)

        rng = np.random.default_rng(3)
        cache = {}
        ga = GeneticAlgorithm(counting_loss, genome_length=4,
                              config=GAConfig(population_size=20,
                                              num_generations=30),
                              rng=rng, cache=cache)
        ga.run()
        # only 4^4 = 256 distinct genomes exist; far fewer calls than the
        # 20 * 31 evaluations a cache-less run would make
        assert len(calls) == len(cache)
        assert len(calls) <= 256

    def test_initial_population_respected_and_topped_up(self):
        rng = np.random.default_rng(4)
        seed_pop = np.zeros((5, 8), dtype=int)
        ga = GeneticAlgorithm(count_nonzero_loss, genome_length=8,
                              config=GAConfig(population_size=20,
                                              num_generations=1), rng=rng)
        result = ga.run(initial_population=seed_pop)
        assert result.best_loss == 0.0  # the seeded optimum survives elitism

    def test_validation(self):
        with pytest.raises(ValueError):
            GeneticAlgorithm(count_nonzero_loss, genome_length=0)
        rng = np.random.default_rng(0)
        ga = GeneticAlgorithm(count_nonzero_loss, genome_length=3, rng=rng)
        with pytest.raises(ValueError):
            ga.run(initial_population=np.zeros((2, 5), dtype=int))

    def test_genes_stay_in_range(self):
        rng = np.random.default_rng(5)
        ga = GeneticAlgorithm(count_nonzero_loss, genome_length=6,
                              num_values=3,
                              config=GAConfig(population_size=15,
                                              num_generations=20), rng=rng)
        result = ga.run()
        assert result.population.min() >= 0
        assert result.population.max() <= 2


class TestEngine:
    def test_converges_on_toy_problem(self):
        config = EngineConfig(num_instances=3, generations_per_round=15,
                              top_k=5, population_size=25, seed=0)
        result = multi_ga_minimize(count_nonzero_loss, genome_length=10,
                                   config=config)
        assert result.best_loss == 0.0
        assert result.num_rounds >= 1
        assert result.num_evaluations > 0
        assert result.total_seconds > 0

    def test_round_bookkeeping(self):
        config = EngineConfig(num_instances=2, generations_per_round=5,
                              top_k=3, population_size=10, seed=1)
        result = multi_ga_minimize(count_nonzero_loss, genome_length=6,
                                   config=config)
        losses = [r.best_loss for r in result.rounds]
        assert all(a >= b for a, b in zip(losses, losses[1:]))
        # convergence: last retry_rounds+1 rounds show no improvement
        assert losses[-1] == result.best_loss

    def test_retry_rounds_bound_total_rounds(self):
        """A constant loss must terminate after exactly 1 + retries rounds."""
        config = EngineConfig(num_instances=1, generations_per_round=2,
                              top_k=2, population_size=5, retry_rounds=2,
                              seed=2)
        result = multi_ga_minimize(lambda g: 1.0, genome_length=3,
                                   config=config)
        assert result.num_rounds == 1 + 2 + 1  # first + 2 retries + final


class TestEngineEdgeCases:
    def test_top_k_zero_completes_with_fresh_reseeds(self):
        """Regression: an empty elite pool used to crash rng.choice after
        the round had already burned all its evaluations."""
        config = EngineConfig(num_instances=2, generations_per_round=2,
                              top_k=0, population_size=6, retry_rounds=1,
                              max_rounds=4, seed=0)
        result = multi_ga_minimize(count_nonzero_loss, genome_length=5,
                                   config=config)
        assert np.isfinite(result.best_loss)
        assert result.num_rounds >= 2  # it survived at least one mix step

    def test_config_validated_before_any_evaluation(self):
        calls = []

        def counting_loss(genome):
            calls.append(1)
            return 0.0

        bad = [EngineConfig(num_instances=0),
               EngineConfig(population_size=0),
               EngineConfig(max_rounds=0),
               EngineConfig(top_k=-1),
               EngineConfig(retry_rounds=-1),
               EngineConfig(generations_per_round=-1),
               EngineConfig(pool_fraction=1.5),
               EngineConfig(parallel_axis="bogus")]
        for config in bad:
            with pytest.raises(ValueError, match="EngineConfig"):
                multi_ga_minimize(counting_loss, genome_length=3,
                                  config=config)
        assert calls == []

    def test_ga_accounting_lives_in_shared_wrapper(self):
        from repro.execution import memoize_loss

        memo = memoize_loss(count_nonzero_loss)
        ga = GeneticAlgorithm(memo, genome_length=4,
                              config=GAConfig(population_size=15,
                                              num_generations=10),
                              rng=np.random.default_rng(8))
        ga.run()
        assert ga.num_evaluations == memo.misses == len(memo.cache)


class TestSPSA:
    def test_quadratic_convergence(self):
        target = np.array([1.0, -2.0, 0.5])

        def loss(x):
            return float(np.sum((x - target) ** 2))

        result = minimize_spsa(loss, np.zeros(3),
                               SPSAConfig(maxiter=400, seed=0))
        np.testing.assert_allclose(result.x, target, atol=0.15)
        assert result.loss < 0.05

    def test_noisy_quadratic(self):
        rng = np.random.default_rng(7)
        target = np.full(4, 0.7)

        def loss(x):
            return float(np.sum((x - target) ** 2) + 0.01 * rng.normal())

        result = minimize_spsa(loss, np.zeros(4),
                               SPSAConfig(maxiter=600, seed=1))
        np.testing.assert_allclose(result.x, target, atol=0.25)

    def test_history_and_callback(self):
        seen = []
        result = minimize_spsa(lambda x: float(x @ x), np.ones(2),
                               SPSAConfig(maxiter=50, seed=2),
                               callback=lambda k, x, f: seen.append(k))
        assert len(result.history) == 50
        assert seen == list(range(50))

    def test_bounds_respected(self):
        result = minimize_spsa(lambda x: float(np.sum(-x)), np.zeros(3),
                               SPSAConfig(maxiter=100, seed=3,
                                          bounds=(0.0, 1.0)))
        assert (result.x >= 0).all() and (result.x <= 1).all()

    def test_explicit_a_skips_calibration(self):
        calls = []

        def loss(x):
            calls.append(1)
            return float(x @ x)

        minimize_spsa(loss, np.ones(2), SPSAConfig(maxiter=10, a=0.1, seed=4))
        assert len(calls) == 2 * 10 + 1  # no calibration probes


class TestParallelEngine:
    def test_parallel_matches_quality(self):
        """Parallel engine finds the same optimum on a toy problem."""
        config = EngineConfig(num_instances=2, generations_per_round=10,
                              top_k=4, population_size=16, retry_rounds=0,
                              seed=3, num_processes=2)
        result = multi_ga_minimize(count_nonzero_loss, genome_length=8,
                                   config=config)
        assert result.best_loss == 0.0
        assert result.num_evaluations > 0

    def test_parallel_reproducible(self):
        config = EngineConfig(num_instances=2, generations_per_round=8,
                              top_k=3, population_size=12, retry_rounds=0,
                              seed=5, num_processes=2)
        a = multi_ga_minimize(count_nonzero_loss, genome_length=6,
                              config=config)
        b = multi_ga_minimize(count_nonzero_loss, genome_length=6,
                              config=config)
        assert a.best_loss == b.best_loss
        np.testing.assert_array_equal(a.best_genome, b.best_genome)
