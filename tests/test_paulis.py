"""Unit and property tests for the Pauli algebra substrate."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.paulis import PAULI_MATRICES, PauliString, PauliSum, PauliTable, random_pauli


def dense(label: str) -> np.ndarray:
    sign = 1
    if label.startswith("-"):
        sign, label = -1, label[1:]
    out = np.array([[1.0 + 0j]])
    for ch in label:
        out = np.kron(out, PAULI_MATRICES[ch])
    return sign * out


labels = st.text(alphabet="IXYZ", min_size=1, max_size=6)
signed_labels = st.tuples(st.sampled_from(["", "-"]), labels).map(lambda t: t[0] + t[1])


class TestPauliString:
    def test_from_label_roundtrip(self):
        for lbl in ["IXYZ", "-ZZXY", "I", "-Y", "XX"]:
            assert PauliString.from_label(lbl).to_label() == lbl

    def test_identity(self):
        p = PauliString.identity(4)
        assert p.is_identity and p.is_z_type and p.weight == 0
        assert p.sign == 1 and p.expectation_all_zeros() == 1.0

    def test_from_sparse(self):
        p = PauliString.from_sparse({0: "X", 3: "Z"}, 5)
        assert p.to_label() == "XIIZI"
        p = PauliString.from_sparse({1: "Y"}, 2, sign=-1)
        assert p.to_label() == "-IY"

    def test_invalid_label_raises(self):
        with pytest.raises(ValueError):
            PauliString.from_label("XQ")

    def test_sparse_out_of_range_raises(self):
        with pytest.raises(ValueError):
            PauliString.from_sparse({7: "X"}, 3)

    @given(signed_labels)
    @settings(max_examples=80)
    def test_to_matrix_matches_dense(self, lbl):
        p = PauliString.from_label(lbl)
        np.testing.assert_allclose(p.to_matrix(), dense(lbl), atol=1e-12)

    @given(labels, labels)
    @settings(max_examples=80)
    def test_multiplication_matches_dense(self, a, b):
        n = max(len(a), len(b))
        a, b = a.ljust(n, "I"), b.ljust(n, "I")
        pa, pb = PauliString.from_label(a), PauliString.from_label(b)
        product = pa * pb
        expected = dense(a) @ dense(b)
        got = product.phase * 1j ** int(np.count_nonzero(product.x & product.z))
        body = dense(product.to_label(with_sign=False))
        np.testing.assert_allclose(got * body, expected, atol=1e-12)

    @given(labels, labels)
    @settings(max_examples=80)
    def test_commutation_matches_dense(self, a, b):
        n = max(len(a), len(b))
        a, b = a.ljust(n, "I"), b.ljust(n, "I")
        pa, pb = PauliString.from_label(a), PauliString.from_label(b)
        da, db = dense(a), dense(b)
        commute_dense = np.allclose(da @ db, db @ da)
        assert pa.commutes_with(pb) == commute_dense

    @given(labels)
    @settings(max_examples=40)
    def test_self_product_is_identity(self, a):
        p = PauliString.from_label(a)
        assert (p * p).is_identity
        assert (p * p).sign == 1

    def test_neg(self):
        p = PauliString.from_label("XY")
        assert (-p).sign == -1
        assert (-(-p)) == p

    def test_expectation_all_zeros(self):
        assert PauliString.from_label("ZZ").expectation_all_zeros() == 1.0
        assert PauliString.from_label("-ZI").expectation_all_zeros() == -1.0
        assert PauliString.from_label("XZ").expectation_all_zeros() == 0.0

    def test_weight_support(self):
        p = PauliString.from_label("IXYI")
        assert p.weight == 2
        np.testing.assert_array_equal(p.support, [1, 2])

    def test_hash_consistency(self):
        a = PauliString.from_label("XY")
        b = PauliString.from_label("XY")
        assert a == b and hash(a) == hash(b)

    def test_mismatched_sizes_raise(self):
        with pytest.raises(ValueError):
            PauliString.from_label("X") * PauliString.from_label("XX")

    def test_random_pauli_is_canonical_or_signed(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            p = random_pauli(5, rng)
            assert p.sign in (1, -1)


class TestPauliTable:
    def test_from_labels_roundtrip(self):
        t = PauliTable.from_labels(["XX", "ZI", "-YZ"])
        assert t.num_rows == 3 and t.num_qubits == 2
        assert [p.to_label() for p in t.to_paulis()] == ["XX", "ZI", "-YZ"]

    def test_signs_and_ztype(self):
        t = PauliTable.from_labels(["ZZ", "-ZI", "XI", "II"])
        np.testing.assert_array_equal(t.signs(), [1, -1, 1, 1])
        np.testing.assert_array_equal(t.z_type_mask(), [True, True, False, True])
        np.testing.assert_array_equal(t.expectation_all_zeros(), [1, -1, 0, 1])

    def test_weights(self):
        t = PauliTable.from_labels(["IXI", "XYZ", "III"])
        np.testing.assert_array_equal(t.weights(), [1, 3, 0])

    def test_mul_pauli_on_rows_matches_pauli_mul(self):
        rng = np.random.default_rng(7)
        paulis = [random_pauli(4, rng) for _ in range(10)]
        other = random_pauli(4, rng)
        t = PauliTable.from_paulis(paulis)
        mask = np.zeros(10, dtype=bool)
        mask[::2] = True
        t.mul_pauli_on_rows(mask, other)
        for i, p in enumerate(paulis):
            expected = p * other if mask[i] else p
            assert t.row(i) == expected

    def test_identity_table(self):
        t = PauliTable.identity(3, 5)
        assert t.num_rows == 3
        np.testing.assert_array_equal(t.expectation_all_zeros(), [1, 1, 1])

    def test_copy_is_independent(self):
        t = PauliTable.from_labels(["XX"])
        c = t.copy()
        c.x[0, 0] = False
        assert t.x[0, 0]


class TestPauliSum:
    def test_duplicate_merge(self):
        h = PauliSum.from_terms([(1.0, "XX"), (2.0, "XX"), (0.5, "ZI")])
        assert h.num_terms == 2
        labels = {p.to_label(): c for c, p in h.terms()}
        assert labels == {"XX": 3.0, "ZI": 0.5}

    def test_sign_absorption(self):
        h = PauliSum.from_terms([(2.0, "-ZZ")])
        ((c, p),) = h.terms()
        assert c == -2.0 and p.to_label() == "ZZ"

    def test_cancellation_keeps_representable(self):
        h = PauliSum.from_terms([(1.0, "XX"), (-1.0, "XX")])
        assert h.num_terms == 1
        assert abs(h.coefficients[0]) < 1e-12

    def test_expectation_all_zeros(self):
        h = PauliSum.from_terms([(1.0, "ZZ"), (0.5, "ZI"), (2.0, "XX")])
        assert h.expectation_all_zeros() == pytest.approx(1.5)

    def test_mixed_state_energy_is_identity_coefficient(self):
        h = PauliSum.from_terms([(1.0, "ZZ"), (0.25, "II")])
        assert h.mixed_state_energy() == pytest.approx(0.25)
        dim = 2 ** h.num_qubits
        np.testing.assert_allclose(np.trace(h.to_matrix()) / dim, 0.25)

    def test_arithmetic(self):
        a = PauliSum.from_terms([(1.0, "X"), (1.0, "Z")])
        b = PauliSum.from_terms([(0.5, "X")])
        s = a + b
        labels = {p.to_label(): c for c, p in s.terms()}
        assert labels == {"X": 1.5, "Z": 1.0}
        d = a - b
        labels = {p.to_label(): c for c, p in d.terms()}
        assert labels == {"X": 0.5, "Z": 1.0}
        m = 2.0 * a
        assert m.max_abs_coefficient() == 2.0

    def test_to_matrix_hermitian(self):
        h = PauliSum.from_terms([(0.3, "XY"), (0.7, "ZZ"), (-0.2, "IX")])
        m = h.to_matrix()
        np.testing.assert_allclose(m, m.conj().T, atol=1e-12)

    @given(st.lists(st.tuples(
        st.floats(-2, 2, allow_nan=False), st.text("IXYZ", min_size=3, max_size=3)),
        min_size=1, max_size=6))
    @settings(max_examples=40)
    def test_matrix_linearity(self, terms):
        h = PauliSum.from_terms(terms)
        expected = sum(c * dense(lbl) for c, lbl in terms)
        np.testing.assert_allclose(h.to_matrix(), expected, atol=1e-10)
