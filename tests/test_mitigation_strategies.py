"""Tests for the mitigation-strategy registry and estimator wrappers.

The acceptance-critical behaviors live here: the ``"zne:folds=3|readout"``
grammar, batch-preserving ZNE (one ``estimate_many`` call per noise
scale), readout correction matching a hand-computed inversion, the golden
bit-identity of ``mitigation="none"``, and the campaign/CLI wiring of the
mitigation axis.
"""

import json

import numpy as np
import pytest

from repro.campaigns import (
    CampaignAggregate,
    CampaignRunner,
    CampaignSpec,
    ResultStore,
    TaskSpec,
    render_report,
)
from repro.cli import main
from repro.core import VQEProblem
from repro.execution import ExactEstimator
from repro.experiments import Experiment
from repro.hamiltonians import ising_model
from repro.mitigation import (
    ComposedMitigation,
    MitigationStrategy,
    NoMitigation,
    ZNEMitigation,
    available_mitigations,
    get_mitigation,
    mitigation_names,
    parse_mitigation,
    register_mitigation,
    resolve_mitigation,
    split_mitigation_specs,
    unregister_mitigation,
)
from repro.noise import NoiseModel
from repro.obs import bucket_of, summarize_spans
from repro.optim import EngineConfig

#: Minimal engine so every experiment here runs in ~100 ms.
TINY_OVERRIDES = {"num_instances": 1, "generations_per_round": 6,
                  "top_k": 3, "population_size": 10, "retry_rounds": 0}
TINY = EngineConfig(seed=0, **TINY_OVERRIDES)


def make_problem(num_qubits=3, depol_1q=1e-3, depol_2q=1e-2, readout=0.02):
    h = ising_model(num_qubits, 1.0)
    nm = NoiseModel.uniform(num_qubits, depol_1q=depol_1q,
                            depol_2q=depol_2q, readout=readout, t1=None)
    return h, VQEProblem.logical(h, noise_model=nm)


def scrub_seconds(obj):
    """Drop wall-clock fields so payload comparisons are timing-free."""
    if isinstance(obj, dict):
        return {k: scrub_seconds(v) for k, v in obj.items()
                if "seconds" not in k}
    if isinstance(obj, list):
        return [scrub_seconds(v) for v in obj]
    return obj


class TestRegistry:
    def test_builtins_registered(self):
        names = mitigation_names()
        for name in ("none", "zne", "readout"):
            assert name in names
        listing = available_mitigations()
        assert listing["none"].description

    def test_get_unknown_has_did_you_mean(self):
        with pytest.raises(KeyError) as err:
            get_mitigation("zn")
        message = err.value.args[0]
        assert "did you mean 'zne'?" in message
        assert "registered mitigations" in message

    def test_register_and_unregister_custom(self):
        @register_mitigation
        class Doubling(MitigationStrategy):
            name = "doubling_test"
            description = "test-only strategy"

            def _wrap(self, estimator):
                return estimator

        try:
            assert isinstance(get_mitigation("doubling_test"), Doubling)
            with pytest.raises(ValueError):
                register_mitigation(Doubling)  # duplicate without replace
            register_mitigation(Doubling, replace=True)
        finally:
            unregister_mitigation("doubling_test")
        assert "doubling_test" not in mitigation_names()

    def test_resolve_forms(self):
        assert isinstance(resolve_mitigation(None), NoMitigation)
        assert resolve_mitigation("none").name == "none"
        strategy = ZNEMitigation(folds=2)
        assert resolve_mitigation(strategy) is strategy
        with pytest.raises(TypeError):
            resolve_mitigation(42)


class TestGrammar:
    def test_defaults_and_canonical_name(self):
        zne = parse_mitigation("zne")
        assert zne.scales == (1, 3, 5)
        assert zne.fit == "linear"
        assert zne.name == "zne"
        # explicitly spelling a default still canonicalizes to the base
        assert parse_mitigation("zne:folds=3").name == "zne"

    def test_parameterized_and_alias(self):
        zne = parse_mitigation("zne:folds=5,fit=exp")
        assert zne.folds == 5
        assert zne.scales == (1, 3, 5, 7, 9)
        assert zne.fit == "exponential"
        assert zne.name == "zne:folds=5,fit=exponential"

    def test_composed_spec(self):
        stack = parse_mitigation("zne:folds=2|readout")
        assert isinstance(stack, ComposedMitigation)
        assert stack.name == "zne:folds=2|readout"
        assert [s.name for s in stack.stages] == ["zne:folds=2", "readout"]

    def test_malformed_parameter(self):
        with pytest.raises(ValueError):
            parse_mitigation("zne:folds")

    def test_unknown_parameter_did_you_mean(self):
        with pytest.raises(ValueError) as err:
            parse_mitigation("zne:fold=5")
        assert "folds" in err.value.args[0]

    def test_unparameterized_strategy_rejects_parameters(self):
        with pytest.raises(ValueError):
            parse_mitigation("readout:k=1")

    def test_unknown_stage_name(self):
        with pytest.raises(KeyError) as err:
            parse_mitigation("zne|readut")
        assert "did you mean 'readout'?" in err.value.args[0]

    def test_zne_constructor_validation(self):
        with pytest.raises(ValueError):
            ZNEMitigation(folds=1)
        with pytest.raises(ValueError):
            ZNEMitigation(fit="cubic")
        with pytest.raises(ValueError):
            ZNEMitigation(folding="pulse")

    def test_split_specs_keeps_parameter_fragments_together(self):
        assert split_mitigation_specs("none,zne:folds=3") == \
            ["none", "zne:folds=3"]
        # the comma inside a parameter list must not split the spec
        assert split_mitigation_specs("none,zne:folds=3,fit=exp|readout") \
            == ["none", "zne:folds=3,fit=exp|readout"]


class TestComposition:
    def test_needs_two_stages(self):
        with pytest.raises(ValueError):
            ComposedMitigation([ZNEMitigation()])
        with pytest.raises(TypeError):
            ComposedMitigation([ZNEMitigation(), "readout"])

    def test_leftmost_stage_is_outermost(self):
        h, problem = make_problem()
        stack = parse_mitigation("zne:folds=2|readout")
        wrapped = stack.wrap(ExactEstimator(problem, h))
        # ZNE outermost, each folded scale readout-corrected inside
        assert wrapped.mode == "zne(readout(exact))"
        reversed_stack = parse_mitigation("readout|zne:folds=2")
        wrapped = reversed_stack.wrap(ExactEstimator(problem, h))
        assert wrapped.mode == "readout(zne(exact))"

    def test_none_wrap_is_identity(self):
        h, problem = make_problem()
        estimator = ExactEstimator(problem, h)
        assert NoMitigation().wrap(estimator) is estimator


class RecordingEstimator:
    """Estimator-protocol spy: records every ``estimate_many`` batch shape.

    Clones made through ``with_problem`` (ZNE's per-scale estimators)
    share the call log, so the test sees the whole stack's batching.
    """

    def __init__(self, inner, calls):
        self._inner = inner
        self.calls = calls

    def __getattr__(self, name):
        return getattr(self._inner, name)

    def estimate_many(self, thetas):
        self.calls.append(np.atleast_2d(np.asarray(thetas, float)).shape)
        return self._inner.estimate_many(thetas)

    def with_problem(self, problem):
        return RecordingEstimator(self._inner.with_problem(problem),
                                  self.calls)


class TestBatchedZNE:
    def test_one_estimate_many_call_per_scale(self):
        """The acceptance bar: a k-point batch at m scales costs exactly m
        batched calls, each carrying the full k points -- never k*m."""
        h, problem = make_problem(readout=0.0)
        calls = []
        spy = RecordingEstimator(ExactEstimator(problem, h), calls)
        wrapped = get_mitigation("zne").wrap(spy)  # folds=3: scales 1,3,5
        num_params = problem.eval_ansatz.num_parameters
        rng = np.random.default_rng(0)
        thetas = rng.normal(size=(4, num_params))
        batch = wrapped.estimate_many(thetas)
        assert len(batch.values) == 4
        assert np.all(np.isfinite(batch.values))
        assert len(calls) == 3  # one per scale, not one per point
        assert [shape[0] for shape in calls] == [4, 4, 4]

    def test_global_folding_tiles_parameter_windows(self):
        h, problem = make_problem(readout=0.0)
        calls = []
        spy = RecordingEstimator(ExactEstimator(problem, h), calls)
        wrapped = parse_mitigation("zne:folds=2,folding=global").wrap(spy)
        num_params = problem.eval_ansatz.num_parameters
        thetas = np.zeros((2, num_params))
        wrapped.estimate_many(thetas)
        # scale 1 sees the raw window, scale 3 the [theta,-theta,theta] tile
        assert calls == [(2, num_params), (2, 3 * num_params)]

    def test_single_point_estimate_rides_the_batch_path(self):
        h, problem = make_problem(readout=0.0)
        calls = []
        spy = RecordingEstimator(ExactEstimator(problem, h), calls)
        wrapped = parse_mitigation("zne:folds=2").wrap(spy)
        theta = np.zeros(problem.eval_ansatz.num_parameters)
        result = wrapped.estimate(theta)
        assert result.mode == "zne(exact)"
        assert [shape[0] for shape in calls] == [1, 1]
        assert wrapped.energy(theta) == pytest.approx(result.value)

    def test_mitigated_closer_to_noiseless(self):
        h, problem = make_problem(depol_1q=2e-3, depol_2q=2e-2, readout=0.0)
        theta = np.full(problem.eval_ansatz.num_parameters, 0.3)
        ideal = ExactEstimator(
            VQEProblem.logical(h), h).estimate(theta).value
        raw = ExactEstimator(problem, h).estimate(theta).value
        for spec in ("zne", "zne:fit=richardson", "zne:fit=exp",
                     "zne:folds=2,folding=global"):
            wrapped = parse_mitigation(spec).wrap(ExactEstimator(problem, h))
            mitigated = wrapped.estimate(theta).value
            assert abs(mitigated - ideal) < abs(raw - ideal), spec

    def test_wrap_requires_with_problem(self):
        h, problem = make_problem()

        class Bare:
            def __init__(self):
                self.problem = problem
                self.mode = "bare"

        with pytest.raises(TypeError):
            get_mitigation("zne").wrap(Bare())


class TestReadoutMitigation:
    def test_matches_hand_computed_inversion(self):
        """With uniform readout error, each weight-w term is attenuated by
        (1 - p01 - p10)^w; the wrapper must divide exactly that out."""
        p01 = p10 = 0.04
        h, problem = make_problem(depol_1q=0.0, depol_2q=0.0, readout=p01)
        theta = np.full(problem.eval_ansatz.num_parameters, 0.2)
        raw = ExactEstimator(problem, h).estimate(theta)
        expected = raw.value
        for (coeff, pauli), term in zip(h.terms(), raw.term_expectations):
            factor = (1.0 - p01 - p10) ** pauli.weight
            expected += coeff.real * (term / factor - term)
        wrapped = get_mitigation("readout").wrap(ExactEstimator(problem, h))
        result = wrapped.estimate(theta)
        assert result.value == pytest.approx(expected, abs=1e-12)
        assert result.mode == "readout(exact)"

    def test_exact_on_readout_only_noise(self):
        """Readout attenuation is the only noise, so inverting it must
        recover the noiseless energy to machine precision."""
        h, problem = make_problem(depol_1q=0.0, depol_2q=0.0, readout=0.06)
        theta = np.linspace(-0.4, 0.4, problem.eval_ansatz.num_parameters)
        ideal = ExactEstimator(VQEProblem.logical(h), h).estimate(theta)
        wrapped = get_mitigation("readout").wrap(ExactEstimator(problem, h))
        mitigated = wrapped.estimate(theta)
        assert mitigated.value == pytest.approx(ideal.value, abs=1e-10)
        np.testing.assert_allclose(mitigated.term_expectations,
                                   ideal.term_expectations, atol=1e-10)

    def test_rejects_uninvertible_confusion(self):
        h, problem = make_problem(depol_1q=0.0, depol_2q=0.0, readout=0.5)
        with pytest.raises(ValueError):
            get_mitigation("readout").wrap(ExactEstimator(problem, h))


class TestExperimentWiring:
    def test_golden_none_is_bit_identical(self):
        """``mitigation="none"`` must not perturb the payload at all
        (timing fields aside) relative to never mentioning mitigation."""
        h = ising_model(3, 1.0)
        nm = NoiseModel.uniform(3, depol_1q=1e-3, depol_2q=1e-2,
                                readout=0.02, t1=None)
        plain = Experiment(h, noise_model=nm).run(
            methods=("cafqa",), config=TINY)
        golden = Experiment(h, noise_model=nm).run(
            methods=("cafqa",), config=TINY, mitigation="none")
        assert scrub_seconds(plain.to_dict()) == \
            scrub_seconds(golden.to_dict())
        # the serialized run omits the field entirely on the default
        assert "mitigation" not in plain.to_dict()["runs"]["cafqa"]
        assert golden.runs["cafqa"].mitigation == "none"

    def test_zne_changes_device_tier_only(self):
        h = ising_model(3, 1.0)
        nm = NoiseModel.uniform(3, depol_1q=2e-3, depol_2q=2e-2,
                                readout=0.02, t1=None)
        baseline = Experiment(h, noise_model=nm).run(
            methods=("cafqa",), config=TINY)
        mitigated = Experiment(h, noise_model=nm).run(
            methods=("cafqa",), config=TINY, mitigation="zne:folds=2")
        run = mitigated.runs["cafqa"]
        assert run.mitigation == "zne:folds=2"
        ev, base_ev = run.evaluation, baseline.runs["cafqa"].evaluation
        # raw tiers untouched (search and noiseless stay unmitigated)
        assert ev.noiseless == pytest.approx(base_ev.noiseless)
        assert ev.clifford_model == pytest.approx(base_ev.clifford_model)
        # the device tier records both views
        assert ev.device_model_raw == pytest.approx(base_ev.device_model)
        assert ev.device_model != ev.device_model_raw
        # and it survives the JSON round trip
        payload = mitigated.to_dict()
        reloaded = type(mitigated).from_dict(payload)
        assert reloaded.runs["cafqa"].mitigation == "zne:folds=2"
        assert reloaded.runs["cafqa"].evaluation.device_model_raw == \
            pytest.approx(ev.device_model_raw)

    def test_vqe_endpoints_are_mitigated(self):
        h = ising_model(3, 1.0)
        nm = NoiseModel.uniform(3, depol_1q=2e-3, depol_2q=2e-2,
                                readout=0.02, t1=None)
        plain = Experiment(h, noise_model=nm).run(
            methods=("cafqa",), config=TINY, vqe_iterations=3)
        mitigated = Experiment(h, noise_model=nm).run(
            methods=("cafqa",), config=TINY, vqe_iterations=3,
            mitigation="zne:folds=2")
        # same SPSA trajectory (the online loop stays raw) ...
        np.testing.assert_allclose(mitigated.runs["cafqa"].vqe.history,
                                   plain.runs["cafqa"].vqe.history)
        # ... but the endpoint energies are extrapolated
        assert mitigated.runs["cafqa"].vqe.final_energy != \
            plain.runs["cafqa"].vqe.final_energy


class TestCampaignAxis:
    def spec(self, **kwargs):
        defaults = dict(name="mit-grid", benchmarks=["ising_J1.00"],
                        qubit_sizes=[3], noise_scales=[1.0],
                        methods=["cafqa"], seeds=[0],
                        mitigations=["none", "zne:folds=2"],
                        engine_preset="smoke",
                        engine_overrides=TINY_OVERRIDES)
        defaults.update(kwargs)
        return CampaignSpec(**defaults)

    def test_axis_multiplies_grid_and_labels(self):
        spec = self.spec()
        tasks = spec.tasks()
        assert spec.num_tasks == len(tasks) == 2
        assert [t.label for t in tasks] == [
            "ising_J1.00/3q/noise_x1/cafqa/s0",
            "ising_J1.00/3q/noise_x1/cafqa/zne:folds=2/s0",
        ]

    def test_default_axis_keeps_task_ids_stable(self):
        # a spec that never mentions mitigations produces the same ids
        with_axis = self.spec(mitigations=["none"]).tasks()
        without = self.spec(mitigations=["none"])
        without.mitigations = ["none"]
        base = dict(benchmark="ising_J1.00", num_qubits=3, method="cafqa",
                    seed=0, setting={"kind": "noiseless"}, engine={})
        assert TaskSpec(**base).task_id == \
            TaskSpec(**base, mitigation="none").task_id
        assert TaskSpec(**base).task_id != \
            TaskSpec(**base, mitigation="zne").task_id
        assert with_axis[0].to_dict().get("mitigation") is None

    def test_spec_validates_mitigations(self):
        with pytest.raises(ValueError):
            self.spec(mitigations=[])
        with pytest.raises(ValueError):
            self.spec(mitigations=["bogus"])
        with pytest.raises(ValueError):
            self.spec(mitigations=["none", "none"])

    def test_end_to_end_aggregate_and_report(self, tmp_path):
        spec = self.spec()
        store = ResultStore.create(tmp_path / "store", spec)
        progress = CampaignRunner(spec, store).run()
        assert progress.ran == 2 and progress.failed == 0
        aggregate = CampaignAggregate.from_store(store)
        assert {row["mitigation"] for row in aggregate.rows} == \
            {"none", "zne:folds=2"}
        only_zne = aggregate.filtered(mitigation="zne:folds=2")
        assert len(only_zne.rows) == 1
        assert only_zne.rows[0]["device_model_raw"] is not None

        report = render_report(store)
        assert "2 mitigation(s)" in report
        assert "| mitigation |" in report or "mitigation" in report
        assert "zne:folds=2" in report
        filtered = render_report(store, mitigation="none")
        assert "zne:folds=2" not in filtered.split("## ", 1)[1]

    def test_filtered_errors_name_available_values(self, tmp_path):
        spec = self.spec()
        store = ResultStore.create(tmp_path / "store", spec)
        CampaignRunner(spec, store).run()
        aggregate = CampaignAggregate.from_store(store)
        with pytest.raises(KeyError) as err:
            aggregate.filtered(mitigation="zne:folds=3")
        message = err.value.args[0]
        assert "zne:folds=2" in message and "none" in message
        with pytest.raises(KeyError) as err:
            aggregate.filtered(mitigatoin="none")
        assert "filter column" in err.value.args[0]
        assert "mitigation" in err.value.args[0]


class TestCLI:
    def test_mitigations_verb_lists_registry(self, capsys):
        assert main(["mitigations"]) == 0
        out = capsys.readouterr().out
        for name in ("none", "zne", "readout"):
            assert name in out
        assert "compose" in out  # the '|' grammar hint

    def test_run_rejects_unknown_mitigation(self, capsys):
        assert main(["run", "ising_J1.00", "--qubits", "3",
                     "--mitigation", "zn"]) == 2
        err = capsys.readouterr().err
        assert "did you mean 'zne'?" in err
        assert "repro mitigations" in err

    def test_run_with_mitigation_smoke(self, capsys, monkeypatch):
        monkeypatch.setenv("CLAPTON_BENCH_PRESET", "smoke")
        assert main(["run", "ising:n=3", "--backend", "nairobi",
                     "--method", "cafqa",
                     "--mitigation", "zne:folds=2"]) == 0
        out = capsys.readouterr().out
        assert "mitigation=zne:folds=2" in out
        assert "raw" in out  # device tier prints the unmitigated value

    def test_sweep_mitigations_flag_and_report_filter(self, capsys,
                                                      tmp_path,
                                                      monkeypatch):
        monkeypatch.setenv("CLAPTON_BENCH_PRESET", "smoke")
        spec = {"name": "cli-mit", "benchmarks": ["ising_J1.00"],
                "qubit_sizes": [3], "noise_scales": [1.0],
                "methods": ["cafqa"], "seeds": [0],
                "engine_preset": "smoke",
                "engine_overrides": TINY_OVERRIDES}
        spec_path = tmp_path / "grid.json"
        spec_path.write_text(json.dumps(spec))
        store = str(spec_path.with_suffix(".campaign"))

        assert main(["sweep", str(spec_path),
                     "--mitigations", "none,zne:folds=2"]) == 0
        out = capsys.readouterr().out
        assert "2 tasks" in out

        assert main(["report", store]) == 0
        out = capsys.readouterr().out
        assert "2 mitigation(s)" in out and "zne:folds=2" in out

        assert main(["report", store, "--mitigation", "zne:folds=2"]) == 0
        capsys.readouterr()
        assert main(["report", store, "--mitigation", "bogus"]) == 2
        err = capsys.readouterr().err
        assert "unknown mitigation value" in err
        assert "zne:folds=2" in err

    def test_sweep_rejects_bad_mitigation_spec(self, capsys, tmp_path):
        spec = {"name": "cli-bad", "benchmarks": ["ising_J1.00"],
                "qubit_sizes": [3], "noise_scales": [1.0],
                "methods": ["cafqa"], "seeds": [0],
                "engine_preset": "smoke"}
        spec_path = tmp_path / "grid.json"
        spec_path.write_text(json.dumps(spec))
        assert main(["sweep", str(spec_path),
                     "--mitigations", "zne:folds"]) == 2
        assert "repro mitigations" in capsys.readouterr().err


class TestObservability:
    def test_mitigation_spans_bucket_separately(self):
        assert bucket_of("mitigation.wrap") == "mitigation"
        assert bucket_of("mitigation.estimate_many") == "mitigation"
        # the raw per-scale circuit work re-appears as a loss.* child
        assert bucket_of("loss.scale_eval") == "loss_eval"

    def test_summary_carries_mitigation_bucket(self):
        spans = [
            {"id": 1, "parent": None, "name": "mitigation.estimate_many",
             "start": 0.0, "dur": 1.0},
            {"id": 2, "parent": 1, "name": "loss.scale_eval",
             "start": 0.1, "dur": 0.7},
        ]
        summary = summarize_spans(spans)
        assert summary.buckets["mitigation"] == pytest.approx(0.3)
        assert summary.buckets["loss_eval"] == pytest.approx(0.7)

    def test_wrapped_estimator_emits_spans(self, tmp_path):
        from repro.obs import JsonlTracer, load_trace, use_tracer

        h, problem = make_problem(readout=0.0)
        path = tmp_path / "trace.jsonl"
        with use_tracer(JsonlTracer(path)):
            wrapped = parse_mitigation("zne:folds=2").wrap(
                ExactEstimator(problem, h))
            wrapped.estimate(np.zeros(problem.eval_ansatz.num_parameters))
        _, spans = load_trace(path)
        names = [s["name"] for s in spans]
        assert "mitigation.wrap" in names
        assert "mitigation.estimate_many" in names
        assert names.count("loss.scale_eval") == 2  # one event per scale
