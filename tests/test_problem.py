"""Focused tests for the VQEProblem bundle (core/problem.py)."""

import numpy as np
import pytest

from repro.backends import FakeNairobi, FakeToronto
from repro.core import VQEProblem
from repro.hamiltonians import ising_model, xxz_model
from repro.noise import NoiseModel


class TestLogicalProblem:
    def test_defaults_to_noiseless(self):
        problem = VQEProblem.logical(ising_model(4, 1.0))
        assert problem.noise_model.depol_1q.max() == 0.0
        assert problem.positions == [0, 1, 2, 3]
        assert problem.transpiled is None
        assert problem.hardware_noise_model is None

    def test_dimensions(self):
        problem = VQEProblem.logical(xxz_model(5, 0.5))
        assert problem.num_logical_qubits == 5
        assert problem.num_eval_qubits == 5
        assert problem.num_vqe_parameters == 20     # 4N
        assert problem.num_transformation_parameters == 25  # 5N circular

    def test_skeleton_is_identity_free_clifford(self):
        problem = VQEProblem.logical(ising_model(4, 0.5))
        skeleton = problem.skeleton()
        assert skeleton.is_clifford()
        assert skeleton.count_ops() == {"cx": 4}  # circular ring

    def test_bound_ansatz_drops_identities(self):
        problem = VQEProblem.logical(ising_model(3, 0.5))
        theta = np.zeros(problem.num_vqe_parameters)
        theta[0] = np.pi / 2
        bound = problem.bound_ansatz(theta)
        rotations = [i for i in bound.instructions if i.name in ("ry", "rz")]
        assert len(rotations) == 1
        assert rotations[0].params == (np.pi / 2,)

    def test_mapped_hamiltonian_identity_positions(self):
        h = xxz_model(4, 1.0)
        problem = VQEProblem.logical(h)
        mapped = problem.mapped_hamiltonian()
        assert {p.to_label(): c for c, p in mapped.terms()} \
            == {p.to_label(): c for c, p in h.terms()}


class TestBackendProblem:
    def test_positions_follow_final_layout(self):
        h = ising_model(6, 1.0)
        problem = VQEProblem.from_backend(h, FakeToronto())
        final = problem.transpiled.final_layout
        assert problem.positions == [final[q] for q in range(6)]

    def test_eval_register_matches_noise_model(self):
        problem = VQEProblem.from_backend(ising_model(5, 0.5), FakeNairobi())
        assert problem.noise_model.num_qubits == problem.num_eval_qubits

    def test_explicit_layout_forwarded(self):
        backend = FakeToronto()
        layout = [0, 1, 4, 7]
        problem = VQEProblem.from_backend(ising_model(4, 1.0), backend,
                                          layout=layout)
        assert problem.transpiled.physical_qubits[
            problem.transpiled.initial_layout[0]] == 0

    def test_hardware_model_only_when_requested(self):
        backend = FakeNairobi()
        plain = VQEProblem.from_backend(ising_model(3, 1.0), backend)
        assert plain.hardware_noise_model is None
        with_twin = VQEProblem.from_backend(
            ising_model(3, 1.0), backend,
            hardware=backend.hardware_twin(seed=1))
        assert with_twin.hardware_noise_model is not None
        assert with_twin.hardware_noise_model.coherent_zz_angle_2q != 0.0

    def test_wrong_noise_width_rejected(self):
        with pytest.raises(ValueError):
            VQEProblem.logical(ising_model(4, 1.0),
                               noise_model=NoiseModel.noiseless(5))

    def test_skeleton_keeps_routing_gates(self):
        """Transpiled skeleton retains the SWAP-decomposed CX overhead --
        these are exactly the noise locations Clapton accounts for."""
        problem = VQEProblem.from_backend(ising_model(6, 1.0), FakeToronto())
        skeleton = problem.skeleton()
        assert skeleton.count_ops().get("cx", 0) > 6  # ring + routing
