"""Tests for the campaign subsystem: specs, stores, runner, aggregation.

The acceptance-critical behaviors live here: deterministic grid expansion
with stable content-hash ids, crash-tolerant stores, resume semantics
(interrupted + resumed == uninterrupted, completed ids skipped), and
sharded runs matching serial runs record for record.
"""

import json

import numpy as np
import pytest

from repro.campaigns import (
    CampaignAggregate,
    CampaignRunner,
    CampaignSpec,
    ResultStore,
    RetryPolicy,
    StoreLockedError,
    TaskSpec,
    engine_from_dict,
    engine_to_dict,
    render_report,
    setting_label,
)
from repro.execution import ThreadExecutor
from repro.experiments import sweep_relative_improvement
from repro.hamiltonians import ising_model
from repro.noise import NoiseModel
from repro.optim import EngineConfig

#: Minimal engine so every campaign task runs in ~100 ms.
TINY_OVERRIDES = {"num_instances": 1, "generations_per_round": 6,
                  "top_k": 3, "population_size": 10, "retry_rounds": 0}
TINY = EngineConfig(seed=0, **{k: v for k, v in TINY_OVERRIDES.items()})


def tiny_spec(**kwargs) -> CampaignSpec:
    defaults = dict(name="tiny", benchmarks=["ising_J1.00"],
                    qubit_sizes=[3], noise_scales=[1.0, 2.0],
                    methods=["ncafqa", "clapton"], seeds=[0],
                    engine_preset="smoke", engine_overrides=TINY_OVERRIDES)
    defaults.update(kwargs)
    return CampaignSpec(**defaults)


def energies(store: ResultStore) -> dict[str, float]:
    """task_id -> device-model energy, for exact run comparisons."""
    out = {}
    for record in store.records():
        run = record["result"]["runs"][record["task"]["method"]]
        out[record["task_id"]] = run["evaluation"]["device_model"]
    return out


class TestSpec:
    def test_deterministic_expansion_order(self):
        spec = tiny_spec(seeds=[0, 1])
        tasks = spec.tasks()
        assert len(tasks) == spec.num_tasks == 8
        # declared nesting: setting varies slowest of the tested axes,
        # then method, then seed
        labels = [t.label for t in tasks[:4]]
        assert labels == [
            "ising_J1.00/3q/noise_x1/ncafqa/s0",
            "ising_J1.00/3q/noise_x1/ncafqa/s1",
            "ising_J1.00/3q/noise_x1/clapton/s0",
            "ising_J1.00/3q/noise_x1/clapton/s1",
        ]

    def test_task_ids_stable_across_round_trip(self, tmp_path):
        spec = tiny_spec()
        path = tmp_path / "spec.json"
        spec.save(path)
        reloaded = CampaignSpec.load(path)
        assert [t.task_id for t in reloaded.tasks()] == \
               [t.task_id for t in spec.tasks()]
        assert reloaded.to_dict() == spec.to_dict()

    def test_task_ids_distinguish_cells(self):
        ids = {t.task_id for t in tiny_spec(seeds=[0, 1, 2]).tasks()}
        assert len(ids) == 12  # 2 settings x 2 methods x 3 seeds

    def test_task_seed_feeds_engine_seed(self):
        tasks = tiny_spec(seeds=[7]).tasks()
        assert all(t.engine["seed"] == 7 and t.seed == 7 for t in tasks)

    def test_engine_round_trip(self):
        config = EngineConfig(num_instances=4, seed=3, pool_fraction=0.25)
        assert engine_from_dict(engine_to_dict(config)) == config

    def test_backends_and_scales_compose(self):
        spec = tiny_spec(backends=["nairobi"], noise_scales=[2.0])
        labels = [setting_label(s) for s in spec.settings()]
        assert labels == ["nairobi", "noise_x2"]

    def test_empty_settings_mean_noiseless(self):
        spec = tiny_spec(backends=[], noise_scales=[])
        assert spec.settings() == [{"kind": "noiseless"}]

    def test_rejects_unknown_method_and_preset(self):
        with pytest.raises(ValueError, match="unknown methods"):
            tiny_spec(methods=["bogus"])
        with pytest.raises(ValueError, match="preset"):
            tiny_spec(engine_preset="bogus")

    def test_rejects_bad_engine_overrides_early(self):
        with pytest.raises(ValueError, match="engine_overrides"):
            tiny_spec(engine_overrides={"populaton_size": 10})  # typo

    def test_rejects_bad_base_noise_and_backends(self):
        with pytest.raises(ValueError, match="base_noise"):
            tiny_spec(base_noise={"depol1q": 5e-3})  # typo
        with pytest.raises(ValueError, match="unknown backends"):
            tiny_spec(backends=["nairboi"])

    def test_rejects_duplicate_axis_values(self):
        with pytest.raises(ValueError, match="duplicate values in seeds"):
            tiny_spec(seeds=[0, 0])
        with pytest.raises(ValueError,
                           match="duplicate values in benchmarks"):
            tiny_spec(benchmarks=["ising_J1.00", "ising_J1.00"])

    def test_noise_model_setting_round_trips(self):
        model = NoiseModel.uniform(3, depol_1q=2e-3, depol_2q=1e-2,
                                   readout=0.03, t1=80e-6)
        restored = NoiseModel.from_dict(
            json.loads(json.dumps(model.to_dict())))
        np.testing.assert_allclose(restored.depol_1q, model.depol_1q)
        np.testing.assert_allclose(restored.t1, model.t1)
        np.testing.assert_allclose(restored.readout_p01, model.readout_p01)
        assert restored.depol_2q_default == model.depol_2q_default


class TestStore:
    def test_create_open_round_trip(self, tmp_path):
        spec = tiny_spec()
        store = ResultStore.create(tmp_path / "s", spec)
        store.append({"task_id": "t1", "status": "done", "seconds": 1.0})
        store.append({"task_id": "t2", "status": "failed", "error": "x"})
        reopened = ResultStore.open(tmp_path / "s")
        assert reopened.spec.name == "tiny"
        assert reopened.completed_ids() == {"t1"}
        assert reopened.failed_ids() == {"t2"}
        assert reopened.counts()["done"] == 1

    def test_latest_record_wins(self, tmp_path):
        store = ResultStore.create(tmp_path / "s", tiny_spec())
        store.append({"task_id": "t1", "status": "failed"})
        store.append({"task_id": "t1", "status": "done"})
        assert ResultStore.open(tmp_path / "s").completed_ids() == {"t1"}

    def test_torn_trailing_line_is_dropped(self, tmp_path):
        import warnings

        store = ResultStore.create(tmp_path / "s", tiny_spec())
        store.append({"task_id": "t1", "status": "done"})
        with open(tmp_path / "s" / "results.jsonl", "a") as fh:
            fh.write('{"task_id": "t2", "status": "do')  # crash mid-append
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # torn tail is normal: silent
            reopened = ResultStore.open(tmp_path / "s")
        assert reopened.completed_ids() == {"t1"}

    def test_mid_log_corruption_warns_with_line_number(self, tmp_path):
        store = ResultStore.create(tmp_path / "s", tiny_spec())
        store.append({"task_id": "t1", "status": "done"})
        store.close()
        with open(tmp_path / "s" / "results.jsonl", "a") as fh:
            fh.write("NOT JSON AT ALL\n")  # damage followed by a valid line
            fh.write('{"task_id": "t3", "status": "done"}\n')
        with pytest.warns(RuntimeWarning, match=r"corrupt record at .*:2 "):
            reopened = ResultStore.open(tmp_path / "s")
        assert reopened.completed_ids() == {"t1", "t3"}

    def test_second_writer_fails_fast(self, tmp_path):
        pytest.importorskip("fcntl")
        first = ResultStore.create(tmp_path / "s", tiny_spec())
        first.append({"task_id": "t1", "status": "done"})
        second = ResultStore.open(tmp_path / "s")
        with pytest.raises(StoreLockedError, match="already being written"):
            second.append({"task_id": "t2", "status": "done"})
        first.close()  # lock released with the handle...
        second.append({"task_id": "t2", "status": "done"})  # ...now fine
        second.close()
        assert ResultStore.open(
            tmp_path / "s").completed_ids() == {"t1", "t2"}

    def test_create_refuses_existing_store(self, tmp_path):
        ResultStore.create(tmp_path / "s", tiny_spec())
        with pytest.raises(FileExistsError):
            ResultStore.create(tmp_path / "s", tiny_spec())

    def test_open_missing_store(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            ResultStore.open(tmp_path / "nope")


class TestRunnerResume:
    def test_interrupted_campaign_resumes_and_matches(self, tmp_path):
        spec = tiny_spec()
        n = spec.num_tasks

        # uninterrupted reference run
        ref_store = ResultStore.create(tmp_path / "ref", spec)
        CampaignRunner(spec, ref_store).run()
        ref = energies(ref_store)
        assert len(ref) == n

        # crash after k of n tasks, then reopen and resume (a real crash
        # drops the write lock with the process; simulate that close)
        k = 2
        store = ResultStore.create(tmp_path / "crash", spec)
        progress = CampaignRunner(spec, store).run(max_tasks=k)
        store.close()
        assert progress.ran == k
        reopened = ResultStore.open(tmp_path / "crash")
        assert len(reopened.completed_ids()) == k
        progress = CampaignRunner(spec, reopened).run()
        assert progress.skipped == k          # completed ids are skipped
        assert progress.ran == n - k          # only the remainder runs
        assert energies(reopened) == ref      # same seeds -> same numbers

        # a further resume is a no-op
        progress = CampaignRunner(spec, reopened).run()
        assert progress.ran == 0 and progress.skipped == n

    def test_resumed_aggregate_equals_uninterrupted(self, tmp_path):
        spec = tiny_spec()
        ref_store = ResultStore.create(tmp_path / "ref", spec)
        CampaignRunner(spec, ref_store).run()

        store = ResultStore.create(tmp_path / "crash", spec)
        CampaignRunner(spec, store).run(max_tasks=3)
        store = ResultStore.open(tmp_path / "crash")
        CampaignRunner(spec, store).run()

        ref_rows = CampaignAggregate.from_store(ref_store).rows
        rows = CampaignAggregate.from_store(store).rows
        # identical figure data modulo wall time
        for row, ref_row in zip(rows, ref_rows, strict=True):
            row.pop("seconds"), ref_row.pop("seconds")
            assert row == ref_row

    def test_sharded_run_matches_serial(self, tmp_path):
        # >= 12-task grid sharded over 4 workers (engines stay serial
        # inside tasks, so numbers are bit-identical to the serial run)
        spec = tiny_spec(seeds=[0, 1, 2])
        assert spec.num_tasks == 12
        serial_store = ResultStore.create(tmp_path / "serial", spec)
        CampaignRunner(spec, serial_store).run()
        with ThreadExecutor(4) as executor:
            sharded_store = ResultStore.create(tmp_path / "sharded", spec)
            CampaignRunner(spec, sharded_store, executor=executor).run()
        assert energies(sharded_store) == energies(serial_store)

    def test_failed_tasks_recorded_and_retried(self, tmp_path):
        spec = tiny_spec(benchmarks=["bogus_bench"])
        store = ResultStore.create(tmp_path / "s", spec)
        progress = CampaignRunner(spec, store).run()
        assert progress.failed == progress.ran == spec.num_tasks
        assert "bogus_bench" in store.record(
            progress.failed_ids[0])["error"]
        # failed cells rerun by default, are skippable via retry_failed
        progress = CampaignRunner(spec, store).run(retry_failed=False)
        assert progress.ran == 0


class TestRetryPolicy:
    def test_backoff_schedule_is_pure_arithmetic(self):
        policy = RetryPolicy(max_attempts=5, backoff_base=0.5,
                             backoff_factor=2.0, backoff_max=3.0)
        assert [policy.delay(a) for a in (1, 2, 3, 4, 5, 6)] == \
               [0.0, 0.5, 1.0, 2.0, 3.0, 3.0]  # capped at backoff_max
        assert not policy.exhausted(4) and policy.exhausted(5)

    def test_rejects_nonsense_parameters(self):
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError, match="delays"):
            RetryPolicy(backoff_base=-1.0)
        with pytest.raises(ValueError, match="factor"):
            RetryPolicy(backoff_factor=0.5)

    def test_runner_retries_until_exhausted(self, tmp_path):
        spec = tiny_spec(benchmarks=["bogus_bench"])  # every task fails
        n = spec.num_tasks
        store = ResultStore.create(tmp_path / "s", spec)
        progress = CampaignRunner(spec, store).run(
            retry=RetryPolicy(max_attempts=3, backoff_base=0.0))
        assert progress.ran == 3 * n       # three rounds of executions
        assert progress.retried == 2 * n   # rounds two and three
        assert progress.failed == n        # still failed at the end
        assert progress.completed == 0     # no cell ever succeeded
        for tid in progress.failed_ids:
            assert store.attempts(tid) == 3
            assert store.record(tid)["attempt"] == 3

    def test_retry_stamps_deterministic_backoff(self, tmp_path):
        spec = tiny_spec(benchmarks=["bogus_bench"], methods=["clapton"])
        store = ResultStore.create(tmp_path / "s", spec)
        policy = RetryPolicy(max_attempts=2, backoff_base=0.01)
        CampaignRunner(spec, store).run(retry=policy)
        for record in store.records():
            # the stamped delay is the policy's arithmetic, not wall time
            assert record["attempt"] == 2
            assert record["backoff_seconds"] == policy.delay(2) == 0.01

    def test_successful_run_stamps_attempt_one(self, tmp_path):
        spec = tiny_spec(methods=["clapton"], noise_scales=[1.0])
        store = ResultStore.create(tmp_path / "s", spec)
        CampaignRunner(spec, store).run(
            retry=RetryPolicy(max_attempts=3))
        for record in store.records():
            assert record["attempt"] == 1
            assert record["backoff_seconds"] == 0.0


class TestAggregateReport:
    @pytest.fixture(scope="class")
    def completed_store(self, tmp_path_factory):
        spec = tiny_spec(seeds=[0, 1])
        store = ResultStore.create(
            tmp_path_factory.mktemp("agg") / "s", spec)
        CampaignRunner(spec, store).run()
        return store

    def test_rows_cover_grid(self, completed_store):
        aggregate = CampaignAggregate.from_store(completed_store)
        assert len(aggregate.rows) == completed_store.spec.num_tasks
        row = aggregate.rows[0]
        assert row["benchmark"] == "ising_J1.00"
        assert row["setting"] == "noise_x1"
        assert np.isfinite(row["device_model"])
        from repro.hamiltonians import ground_state_energy

        assert row["e0"] == pytest.approx(
            ground_state_energy(ising_model(3, 1.0)))

    def test_eta_rows_join_methods(self, completed_store):
        aggregate = CampaignAggregate.from_store(completed_store)
        etas = aggregate.eta_rows("ncafqa")
        assert len(etas) == 4  # 2 settings x 2 seeds
        assert all(np.isfinite(e["eta"]) and e["eta"] > 0 for e in etas)

    def test_eta_summary_aggregates_seeds(self, completed_store):
        aggregate = CampaignAggregate.from_store(completed_store)
        summary = aggregate.eta_summary("ncafqa")
        assert len(summary) == 2  # one per setting
        assert all(s["num_seeds"] == 2 for s in summary)

    def test_csv_round_trip(self, completed_store, tmp_path):
        import csv

        aggregate = CampaignAggregate.from_store(completed_store)
        path = tmp_path / "rows.csv"
        aggregate.write_csv(path)
        with open(path) as fh:
            rows = list(csv.DictReader(fh))
        assert len(rows) == len(aggregate.rows)
        assert float(rows[0]["device_model"]) == pytest.approx(
            aggregate.rows[0]["device_model"])

    def test_report_contains_figure_tables(self, completed_store):
        report = render_report(completed_store)
        assert "# Campaign report: tiny" in report
        assert "8/8 done" in report
        assert "## Three-tier energies" in report
        assert "eta(clapton vs ncafqa)" in report
        assert "noise_x2" in report

    def test_report_on_empty_store(self, tmp_path):
        store = ResultStore.create(tmp_path / "s", tiny_spec())
        assert "No completed tasks yet" in render_report(store)


class TestLegacySweepWrapper:
    def make_inputs(self):
        h = ising_model(3, 1.0)
        models = [NoiseModel.uniform(3, depol_1q=p, depol_2q=10 * p,
                                     readout=0.02, t1=100e-6)
                  for p in (1e-3, 3e-3)]
        return h, models

    def test_emits_deprecation_warning(self):
        h, models = self.make_inputs()
        with pytest.warns(DeprecationWarning, match="CampaignRunner"):
            sweep_relative_improvement(h, models[:1], config=TINY)

    def test_failing_cell_raises_with_original_error(self):
        h, _ = self.make_inputs()
        wrong_width = [NoiseModel.uniform(5, depol_1q=1e-3)]
        with pytest.warns(DeprecationWarning), \
                pytest.raises(RuntimeError, match="noise model width"):
            sweep_relative_improvement(h, wrong_width, config=TINY)

    def test_numbers_identical_to_direct_experiments(self):
        from repro.experiments import Experiment
        from repro.hamiltonians import ground_state_energy

        h, models = self.make_inputs()
        e0 = ground_state_energy(h)
        expected = []
        for nm in models:
            result = Experiment(h, noise_model=nm, e0=e0).run(
                ("ncafqa", "clapton"), config=TINY)
            expected.append(result.eta_initial("ncafqa",
                                               tier="device_model"))
        with pytest.warns(DeprecationWarning):
            etas = sweep_relative_improvement(h, models, config=TINY)
        assert etas == expected


class TestExplicitTasks:
    def test_task_with_explicit_hamiltonian_and_backend(self, tmp_path):
        from repro.paulis.serialization import pauli_sum_to_dict

        h = ising_model(3, 0.5)
        task = TaskSpec(benchmark="custom", num_qubits=3, method="cafqa",
                        seed=0, setting={"kind": "backend",
                                         "backend": "nairobi"},
                        engine=engine_to_dict(TINY),
                        hamiltonian=pauli_sum_to_dict(h))
        result = task.run()
        assert result["benchmark"] == "custom"
        assert np.isfinite(
            result["runs"]["cafqa"]["evaluation"]["device_model"])

    def test_unknown_backend_rejected(self):
        task = TaskSpec(benchmark="ising_J1.00", num_qubits=3,
                        method="cafqa", seed=0,
                        setting={"kind": "backend", "backend": "bogus"},
                        engine=engine_to_dict(TINY))
        with pytest.raises(ValueError, match="unknown backend"):
            task.build_experiment()
