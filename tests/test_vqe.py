"""Tests for the VQE estimator and SPSA runner."""

import numpy as np
import pytest

from repro.core import VQEProblem, cafqa, clapton
from repro.hamiltonians import ground_state_energy, ising_model, xxz_model
from repro.noise import NoiseModel
from repro.optim import EngineConfig, SPSAConfig
from repro.vqe import EnergyEstimator, run_vqe

ENGINE = EngineConfig(num_instances=2, generations_per_round=10, top_k=5,
                      population_size=20, retry_rounds=1, seed=0)


def make_problem(n=3, noisy=True):
    h = ising_model(n, 1.0)
    nm = (NoiseModel.uniform(n, depol_1q=1e-3, depol_2q=8e-3, readout=0.02,
                             t1=80e-6)
          if noisy else NoiseModel.noiseless(n))
    return VQEProblem.logical(h, noise_model=nm)


class TestEnergyEstimator:
    def test_exact_matches_noiseless_at_zero(self):
        problem = make_problem(noisy=False)
        est = EnergyEstimator(problem, problem.mapped_hamiltonian())
        value = est.energy(np.zeros(problem.num_vqe_parameters))
        assert value == pytest.approx(
            problem.hamiltonian.expectation_all_zeros())

    def test_variational_bound(self):
        problem = make_problem(noisy=False)
        est = EnergyEstimator(problem, problem.mapped_hamiltonian())
        rng = np.random.default_rng(0)
        e0 = ground_state_energy(problem.hamiltonian)
        for _ in range(5):
            theta = rng.uniform(0, 2 * np.pi, problem.num_vqe_parameters)
            assert est.energy(theta) >= e0 - 1e-9

    def test_shot_noise_statistics(self):
        problem = make_problem()
        exact = EnergyEstimator(problem, problem.mapped_hamiltonian())
        sampled = EnergyEstimator(problem, problem.mapped_hamiltonian(),
                                  shots=256, seed=1)
        theta = np.zeros(problem.num_vqe_parameters)
        reference = exact.energy(theta)
        draws = np.array([sampled.energy(theta) for _ in range(60)])
        assert draws.std() > 0
        assert abs(draws.mean() - reference) < 5 * draws.std() / np.sqrt(60)

    def test_width_mismatch_rejected(self):
        problem = make_problem()
        with pytest.raises(ValueError):
            EnergyEstimator(problem, problem.mapped_hamiltonian(),
                            noise_model=NoiseModel.noiseless(7))

    def test_counts_evaluations(self):
        problem = make_problem()
        est = EnergyEstimator(problem, problem.mapped_hamiltonian())
        theta = np.zeros(problem.num_vqe_parameters)
        est.energy(theta)
        est.energy(theta)
        assert est.num_evaluations == 2


class TestRunVQE:
    def test_noiseless_vqe_approaches_ground_state(self):
        problem = make_problem(n=3, noisy=False)
        init = cafqa(problem, config=ENGINE)
        trace = run_vqe(init, maxiter=150, seed=2)
        e0 = ground_state_energy(problem.hamiltonian)
        gap0 = init.loss - e0
        # CAFQA already lands near the best stabilizer point; VQE should not
        # end far above it and often improves toward E0
        assert trace.final_energy <= trace.initial_energy + 0.15 * abs(e0)
        assert trace.final_energy >= e0 - 1e-9
        assert len(trace.history) == 150

    def test_clapton_vqe_runs_on_transformed_problem(self):
        problem = make_problem(n=3, noisy=True)
        init = clapton(problem, config=ENGINE)
        trace = run_vqe(init, maxiter=60, seed=3)
        np.testing.assert_array_equal(trace.initial_theta,
                                      np.zeros(problem.num_vqe_parameters))
        # energies refer to the transformed observable, whose spectrum
        # matches the original problem's
        e0 = ground_state_energy(problem.hamiltonian)
        assert trace.final_energy >= e0 - 1e-9
        assert trace.num_evaluations >= 2 * 60

    def test_hardware_fields_populated_only_with_twin(self):
        problem = make_problem()
        init = cafqa(problem, config=ENGINE)
        trace = run_vqe(init, maxiter=10, seed=4)
        assert trace.hardware_initial is None and trace.hardware_final is None

        from repro.backends import FakeNairobi

        backend = FakeNairobi()
        problem_hw = VQEProblem.from_backend(
            ising_model(3, 1.0), backend,
            hardware=backend.hardware_twin(seed=5))
        init_hw = cafqa(problem_hw, config=ENGINE)
        trace_hw = run_vqe(init_hw, maxiter=10, seed=5)
        assert trace_hw.hardware_initial is not None
        assert trace_hw.hardware_final is not None

    def test_spsa_config_override(self):
        problem = make_problem()
        init = cafqa(problem, config=ENGINE)
        trace = run_vqe(init, spsa_config=SPSAConfig(maxiter=5, a=0.05, seed=0))
        assert len(trace.history) == 5
