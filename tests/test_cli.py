"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestCLI:
    def test_list(self, capsys):
        assert main(["list", "--qubits", "6"]) == 0
        out = capsys.readouterr().out
        assert "ising_J0.25" in out and "H2O_l1.0" in out

    def test_ground_energy(self, capsys):
        assert main(["ground-energy", "xxz_J1.00", "--qubits", "4"]) == 0
        out = capsys.readouterr().out
        assert "E0 =" in out

    def test_run_smoke(self, capsys, monkeypatch):
        monkeypatch.setenv("CLAPTON_BENCH_PRESET", "smoke")
        assert main(["run", "ising_J1.00", "--backend", "nairobi",
                     "--method", "clapton", "--qubits", "3"]) == 0
        out = capsys.readouterr().out
        assert "device model" in out

    def test_run_rejects_unknown(self, capsys):
        assert main(["run", "ising_J1.00", "--method", "bogus"]) == 2
        assert main(["run", "ising_J1.00", "--backend", "bogus"]) == 2

    @pytest.mark.slow
    def test_molecule_with_save(self, capsys, tmp_path):
        target = tmp_path / "lih.json"
        assert main(["molecule", "LiH", "1.5", "--save", str(target)]) == 0
        out = capsys.readouterr().out
        assert "631 terms" in out
        from repro.paulis.serialization import load_pauli_sum

        assert load_pauli_sum(target).num_terms == 631

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])
