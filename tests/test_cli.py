"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestCLI:
    def test_list(self, capsys):
        assert main(["list", "--qubits", "6"]) == 0
        out = capsys.readouterr().out
        assert "ising_J0.25" in out and "H2O_l1.0" in out

    def test_ground_energy(self, capsys):
        assert main(["ground-energy", "xxz_J1.00", "--qubits", "4"]) == 0
        out = capsys.readouterr().out
        assert "E0 =" in out

    def test_run_smoke(self, capsys, monkeypatch):
        monkeypatch.setenv("CLAPTON_BENCH_PRESET", "smoke")
        assert main(["run", "ising_J1.00", "--backend", "nairobi",
                     "--method", "clapton", "--qubits", "3"]) == 0
        out = capsys.readouterr().out
        assert "device model" in out

    def test_run_rejects_unknown(self, capsys):
        assert main(["run", "ising_J1.00", "--method", "bogus"]) == 2
        assert main(["run", "ising_J1.00", "--backend", "bogus"]) == 2

    def test_methods_verb_lists_registry(self, capsys):
        assert main(["methods"]) == 0
        out = capsys.readouterr().out
        for name in ("cafqa", "ncafqa", "clapton", "random_clifford",
                     "vanilla"):
            assert name in out

    def test_benchmarks_verb_with_kind_filter(self, capsys):
        assert main(["benchmarks"]) == 0
        out = capsys.readouterr().out
        assert "ising_J0.25" in out and "H2O_l1.0" in out
        assert "family:key=value" in out and "suite:paper" in out
        assert main(["benchmarks", "--kind", "chemistry"]) == 0
        out = capsys.readouterr().out
        assert "H2O_l1.0" in out and "ising_J0.25" not in out

    def test_run_did_you_mean_on_typoed_method(self, capsys):
        assert main(["run", "ising_J1.00", "--methods", "claptn"]) == 2
        err = capsys.readouterr().err
        assert "did you mean 'clapton'?" in err
        assert "repro methods" in err

    def test_run_multiple_methods_on_parameterized_benchmark(
            self, capsys, monkeypatch):
        monkeypatch.setenv("CLAPTON_BENCH_PRESET", "smoke")
        assert main(["run", "ising:n=3,J=0.5", "--backend", "nairobi",
                     "--methods", "vanilla,random_clifford"]) == 0
        out = capsys.readouterr().out
        assert "-- vanilla --" in out and "-- random_clifford --" in out
        assert out.count("device model") == 2

    def test_run_dedupes_repeated_methods(self, capsys, monkeypatch):
        monkeypatch.setenv("CLAPTON_BENCH_PRESET", "smoke")
        assert main(["run", "ising:n=3,J=0.5", "--backend", "nairobi",
                     "--methods", "vanilla,vanilla"]) == 0
        out = capsys.readouterr().out
        assert out.count("device model") == 1  # one run, one block

    def test_run_rejects_bad_benchmark_parameter_value(self, capsys):
        assert main(["run", "ising:n=abc"]) == 2
        assert main(["run", "ising:J=abc"]) == 2
        err = capsys.readouterr().err
        assert "cannot build benchmark" in err or "abc" in err

    def test_run_rejects_unknown_benchmark(self, capsys):
        assert main(["run", "bogus_bench"]) == 2
        err = capsys.readouterr().err
        assert "unknown benchmark 'bogus_bench'" in err
        assert "repro list" in err
        assert main(["ground-energy", "bogus_bench"]) == 2

    def test_run_seed_flag(self, capsys, monkeypatch):
        monkeypatch.setenv("CLAPTON_BENCH_PRESET", "smoke")
        argv = ["run", "ising_J1.00", "--backend", "nairobi",
                "--qubits", "3", "--vqe-iterations", "2"]

        def final_energy(seed_args):
            assert main(argv + seed_args) == 0
            out = capsys.readouterr().out
            return [l for l in out.splitlines() if "VQE final" in l][0]

        base = final_energy([])
        assert final_energy(["--seed", "0"]) == base  # default seed is 0
        assert final_energy(["--seed", "123"]) != base

    @pytest.mark.slow
    def test_molecule_with_save(self, capsys, tmp_path):
        target = tmp_path / "lih.json"
        assert main(["molecule", "LiH", "1.5", "--save", str(target)]) == 0
        out = capsys.readouterr().out
        assert "631 terms" in out
        from repro.paulis.serialization import load_pauli_sum

        assert load_pauli_sum(target).num_terms == 631

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCampaignCLI:
    @pytest.fixture()
    def spec_path(self, tmp_path):
        import json

        spec = {
            "name": "cli-grid",
            "benchmarks": ["ising_J1.00"],
            "qubit_sizes": [3],
            "noise_scales": [1.0],
            "methods": ["ncafqa", "clapton"],
            "seeds": [0],
            "engine_preset": "smoke",
            "engine_overrides": {"num_instances": 1,
                                 "generations_per_round": 6, "top_k": 3,
                                 "population_size": 10, "retry_rounds": 0},
        }
        path = tmp_path / "grid.json"
        path.write_text(json.dumps(spec))
        return path

    def test_sweep_status_report_flow(self, capsys, spec_path):
        store = str(spec_path.with_suffix(".campaign"))
        assert main(["sweep", str(spec_path)]) == 0
        out = capsys.readouterr().out
        assert "2 tasks" in out and "done: 2/2" in out

        # rerunning an existing store requires --resume
        assert main(["sweep", str(spec_path)]) == 2
        assert "--resume" in capsys.readouterr().err
        assert main(["sweep", str(spec_path), "--resume"]) == 0
        assert "2 skipped" in capsys.readouterr().out

        assert main(["status", store]) == 0
        out = capsys.readouterr().out
        assert "2 done, 0 failed, 0 pending" in out

        csv_path = spec_path.parent / "rows.csv"
        assert main(["report", store, "--csv", str(csv_path)]) == 0
        out = capsys.readouterr().out
        assert "# Campaign report: cli-grid" in out
        assert "eta(clapton vs ncafqa)" in out
        assert csv_path.read_text().startswith("benchmark,")

    def test_resume_rejects_edited_spec(self, capsys, spec_path):
        import json

        assert main(["sweep", str(spec_path)]) == 0
        capsys.readouterr()
        edited = json.loads(spec_path.read_text())
        edited["seeds"] = [0, 1]
        spec_path.write_text(json.dumps(edited))
        assert main(["sweep", str(spec_path), "--resume"]) == 2
        assert "no longer matches" in capsys.readouterr().err

    def test_sweep_rejects_bad_spec(self, capsys, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"benchmarks": ["x"]}')  # missing name
        assert main(["sweep", str(bad)]) == 2
        assert "cannot load campaign spec" in capsys.readouterr().err
        assert main(["sweep", str(tmp_path / "missing.json")]) == 2
        capsys.readouterr()
        bad.write_text('{"name": "b", "benchmarks": ["ising_J1.0"]}')
        assert main(["sweep", str(bad)]) == 2  # typo'd registry name
        assert "unknown benchmarks" in capsys.readouterr().err
        bad.write_text('{"name": "b", "benchmarks": ["ising_J1.00"],'
                       ' "methods": ["claptn"]}')
        assert main(["sweep", str(bad)]) == 2  # typo'd method name
        assert "did you mean 'clapton'" in capsys.readouterr().err

    def test_status_and_report_reject_missing_store(self, capsys, tmp_path):
        assert main(["status", str(tmp_path / "nope")]) == 2
        assert main(["report", str(tmp_path / "nope")]) == 2

    def test_sweep_rejects_bad_retry_policy(self, capsys, spec_path):
        assert main(["sweep", str(spec_path), "--max-attempts", "0"]) == 2
        assert "bad retry policy" in capsys.readouterr().err

    def test_sweep_max_attempts_stamps_records(self, capsys, spec_path):
        from repro.campaigns import ResultStore

        store = str(spec_path.with_suffix(".campaign"))
        assert main(["sweep", str(spec_path), "--max-attempts", "3"]) == 0
        for record in ResultStore.open(store).records():
            assert record["attempt"] == 1  # nothing failed, no retries
            assert record["backoff_seconds"] == 0.0


class TestServiceCLI:
    @pytest.fixture()
    def spec_path(self, tmp_path):
        import json

        spec = {
            "name": "svc-grid",
            "benchmarks": ["ising_J1.00"],
            "qubit_sizes": [3],
            "noise_scales": [1.0],
            "methods": ["ncafqa", "clapton"],
            "seeds": [0, 1],
            "engine_preset": "smoke",
            "engine_overrides": {"num_instances": 1,
                                 "generations_per_round": 6, "top_k": 3,
                                 "population_size": 10, "retry_rounds": 0},
        }
        path = tmp_path / "grid.json"
        path.write_text(json.dumps(spec))
        return path

    def test_serve_until_done_with_local_workers(self, capsys, tmp_path,
                                                 spec_path):
        root = tmp_path / "campaigns"
        assert main(["serve", "--port", "0", "--root", str(root),
                     "--spec", str(spec_path), "--until-done",
                     "--local-workers", "2"]) == 0
        out = capsys.readouterr().out
        assert "4 tasks" in out
        assert "2 local worker(s) attached" in out
        assert "4/4 done, 0 failed" in out

        # the service left a normal store behind: status/report work on it
        stores = list(root.glob("*.campaign"))
        assert len(stores) == 1
        assert main(["status", str(stores[0])]) == 0
        assert "4 done, 0 failed, 0 pending" in capsys.readouterr().out

        # re-serving the same spec resumes the finished campaign
        assert main(["serve", "--port", "0", "--root", str(root),
                     "--spec", str(spec_path), "--until-done"]) == 0
        assert "(resumed)" in capsys.readouterr().out

    def test_serve_rejects_bad_inputs(self, capsys, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"benchmarks": ["x"]}')  # missing name
        assert main(["serve", "--port", "0", "--root",
                     str(tmp_path / "r"), "--spec", str(bad)]) == 2
        assert "cannot register" in capsys.readouterr().err
        assert main(["serve", "--port", "0", "--root",
                     str(tmp_path / "r"), "--max-attempts", "0"]) == 2
        assert "bad retry policy" in capsys.readouterr().err
        assert main(["serve", "--port", "0", "--root",
                     str(tmp_path / "r"),
                     "--store", str(tmp_path / "nope")]) == 2
        assert "cannot attach" in capsys.readouterr().err

    def test_submit_to_live_server(self, capsys, tmp_path, spec_path):
        from repro.campaigns.service import ServiceState, start_server

        state = ServiceState(tmp_path / "root")
        server = start_server(state, port=0)
        try:
            assert main(["submit", str(spec_path),
                         "--connect", server.url]) == 0
            out = capsys.readouterr().out
            assert "svc-grid" in out and "4 task" in out
            # idempotent: a second submit attaches, not restarts
            assert main(["submit", str(spec_path),
                         "--connect", server.url]) == 0
            assert "resumed" in capsys.readouterr().out
        finally:
            server.stop()

    def test_submit_unreachable_server(self, capsys, spec_path):
        assert main(["submit", str(spec_path),
                     "--connect", "http://127.0.0.1:9"]) == 1
        assert "cannot reach" in capsys.readouterr().err

    def test_worker_unreachable_server(self, capsys):
        assert main(["worker", "--connect", "http://127.0.0.1:9",
                     "--poll", "0.01"]) == 1
        assert "lost the scheduler" in capsys.readouterr().err
