"""Cross-module integration tests: the full pipeline, end to end.

These tests exercise realistic flows spanning many subsystems at once --
the places unit tests cannot reach: transpilation + transformation + noise
evaluation consistency, Clapton on chemistry Hamiltonians, hardware twins,
and invariants that must survive the entire stack.
"""

import numpy as np
import pytest

from repro import (
    FakeNairobi,
    FakeToronto,
    NoiseModel,
    VQEProblem,
    cafqa,
    clapton,
    evaluate_initial_point,
    ground_state_energy,
    ising_model,
    ncafqa,
    relative_improvement,
    run_vqe,
    xxz_model,
)
from repro.core import ClaptonLoss, transform_hamiltonian
from repro.densesim import noisy_energy
from repro.experiments import SMOKE_ENGINE, compare_initializations
from repro.noise import CliffordNoiseModel
from repro.optim import EngineConfig

TINY_ENGINE = EngineConfig(num_instances=2, generations_per_round=8,
                           top_k=4, population_size=16, retry_rounds=0,
                           seed=0)


class TestEndToEndPhysics:
    def test_full_paper_flow_on_nairobi(self):
        """Transpile -> optimize 3 methods -> evaluate 3 tiers -> VQE."""
        hamiltonian = ising_model(4, 0.5)
        problem = VQEProblem.from_backend(hamiltonian, FakeNairobi())
        row = compare_initializations("ising", hamiltonian, problem,
                                      config=TINY_ENGINE, vqe_iterations=15)
        e0 = row.e0
        for method in ("cafqa", "ncafqa", "clapton"):
            ev = row.evaluations[method]
            # physical sanity across the whole stack
            assert e0 <= ev.noiseless + 1e-9
            assert ev.device_model >= e0 - 1e-9
            assert ev.device_model <= hamiltonian.mixed_state_energy() + 1.0
            trace = row.vqe[method]
            assert trace.final_energy >= e0 - 1e-9
        # eta computable and finite
        assert np.isfinite(row.eta_initial("cafqa"))
        assert np.isfinite(row.eta_final("ncafqa"))

    def test_clapton_loss_predicts_clifford_tier(self):
        """The engine's L_N at the winning genome equals the clifford-model
        evaluation of the initial point -- across transpilation, embedding,
        and observable construction."""
        hamiltonian = xxz_model(5, 1.0)
        problem = VQEProblem.from_backend(hamiltonian, FakeToronto())
        result = clapton(problem, config=TINY_ENGINE)
        loss = ClaptonLoss(problem)
        ln, l0 = loss.components(result.genome)
        ev = evaluate_initial_point(result)
        assert ev.clifford_model == pytest.approx(ln, abs=1e-9)
        assert ev.noiseless == pytest.approx(l0, abs=1e-9)

    def test_transformed_problem_spectrum_survives_stack(self):
        hamiltonian = xxz_model(4, 0.25)
        problem = VQEProblem.from_backend(hamiltonian, FakeNairobi())
        result = clapton(problem, config=TINY_ENGINE)
        assert ground_state_energy(result.vqe_hamiltonian) == pytest.approx(
            ground_state_energy(hamiltonian), abs=1e-8)

    def test_methods_share_problem_safely(self):
        """Running all three methods on one problem object must not leak
        state between them (the observable caches, skeleton, etc.)."""
        hamiltonian = ising_model(4, 1.0)
        problem = VQEProblem.from_backend(hamiltonian, FakeNairobi())
        first = cafqa(problem, config=TINY_ENGINE)
        middle = clapton(problem, config=TINY_ENGINE)
        second = cafqa(problem, config=TINY_ENGINE)
        assert first.loss == pytest.approx(second.loss)
        np.testing.assert_array_equal(first.genome, second.genome)

    def test_noise_monotonicity_through_stack(self):
        """Scaling every error rate up cannot improve the device energy of
        a fixed Clapton initialization."""
        hamiltonian = ising_model(4, 1.0)
        base_nm = NoiseModel.uniform(4, depol_1q=1e-3, depol_2q=1e-2,
                                     readout=0.02, t1=80e-6)
        problem = VQEProblem.logical(hamiltonian, noise_model=base_nm)
        result = clapton(problem, config=TINY_ENGINE)
        circuit = result.initial_circuit()
        observable = result.initial_observable()
        e_base = noisy_energy(circuit, observable, base_nm)
        worse_nm = NoiseModel.uniform(4, depol_1q=5e-3, depol_2q=5e-2,
                                      readout=0.08, t1=30e-6)
        e_worse = noisy_energy(circuit, observable, worse_nm)
        assert e_worse >= e_base - 1e-9


class TestEndToEndChemistry:
    @pytest.mark.slow
    def test_clapton_on_molecular_hamiltonian(self):
        """The headline chemistry claim in miniature: on LiH, Clapton's
        initial point beats noise-aware CAFQA under device-model noise."""
        from repro.chem import molecular_hamiltonian

        hamiltonian = molecular_hamiltonian("LiH", 1.5).hamiltonian
        nm = NoiseModel.uniform(10, depol_1q=5e-4, depol_2q=5e-3,
                                readout=0.02, t1=100e-6)
        problem = VQEProblem.logical(hamiltonian, noise_model=nm)
        base = ncafqa(problem, config=TINY_ENGINE)
        clap = clapton(problem, config=TINY_ENGINE)
        e0 = ground_state_energy(hamiltonian)
        e_base = evaluate_initial_point(base).device_model
        e_clap = evaluate_initial_point(clap).device_model
        eta = relative_improvement(e0, e_base, e_clap)
        assert eta > 0.9  # must at least hold ground at tiny budgets

    @pytest.mark.slow
    def test_molecular_identity_constant_matches_core_energy(self):
        """The PauliSum identity coefficient carries nuclear + frozen-core
        energy through the whole mapping chain."""
        from repro.chem import ACTIVE_SPACES, molecular_hamiltonian
        from repro.chem.active_space import active_space_tensors

        prob = molecular_hamiltonian("H2O", 1.0)
        core, _, _ = active_space_tensors(prob.scf, ACTIVE_SPACES["H2O"])
        # identity coefficient = core + sum of purely scalar parts of the
        # two-body/one-body mapping; at minimum it must be finite and the
        # ground energy must sit below HF
        assert np.isfinite(prob.hamiltonian.identity_constant())
        assert ground_state_energy(prob.hamiltonian) < prob.hf_energy


class TestFailureInjection:
    def test_mismatched_noise_model_width(self):
        hamiltonian = ising_model(4, 1.0)
        with pytest.raises(ValueError):
            VQEProblem.logical(hamiltonian,
                               noise_model=NoiseModel.noiseless(6))

    def test_vqe_on_foreign_theta_length(self):
        problem = VQEProblem.logical(ising_model(3, 1.0))
        result = cafqa(problem, config=TINY_ENGINE)
        from repro.vqe import EnergyEstimator

        est = EnergyEstimator(problem, problem.mapped_hamiltonian())
        with pytest.raises(ValueError):
            est.energy(np.zeros(3))  # ansatz has 12 parameters

    def test_engine_with_zero_budget_still_returns(self):
        problem = VQEProblem.logical(ising_model(3, 0.5))
        config = EngineConfig(num_instances=1, generations_per_round=0,
                              top_k=1, population_size=4, retry_rounds=0,
                              seed=0)
        result = clapton(problem, config=config)
        assert result.genome is not None
        assert np.isfinite(result.loss)

    def test_hamiltonian_with_identity_only(self):
        """A constant Hamiltonian is degenerate but must not crash."""
        from repro.paulis import PauliSum

        h = PauliSum.from_terms([(2.5, "III")])
        problem = VQEProblem.logical(h)
        result = clapton(problem, config=TINY_ENGINE)
        assert result.loss == pytest.approx(5.0)  # L_N + L_0 = 2.5 + 2.5

    def test_extreme_noise_rates(self):
        """Maximal depolarizing noise drives every Pauli term to zero."""
        h = ising_model(3, 1.0)
        nm = NoiseModel.uniform(3, depol_1q=0.75, depol_2q=15 / 16,
                                readout=0.5, t1=None)
        problem = VQEProblem.logical(h, noise_model=nm)
        model = CliffordNoiseModel(nm)
        value = model.noisy_zero_state_energy(problem.skeleton(),
                                              problem.mapped_hamiltonian())
        assert abs(value) < 1e-6


class TestDeterminism:
    def test_identical_seeds_identical_results(self):
        hamiltonian = xxz_model(4, 0.5)
        problem = VQEProblem.from_backend(hamiltonian, FakeNairobi())
        a = clapton(problem, config=TINY_ENGINE)
        b = clapton(problem, config=TINY_ENGINE)
        np.testing.assert_array_equal(a.genome, b.genome)
        assert a.loss == b.loss

    def test_different_seeds_explore_differently(self):
        hamiltonian = xxz_model(4, 0.5)
        problem = VQEProblem.from_backend(hamiltonian, FakeNairobi())
        config_b = EngineConfig(num_instances=2, generations_per_round=8,
                                top_k=4, population_size=16, retry_rounds=0,
                                seed=99)
        a = clapton(problem, config=TINY_ENGINE)
        b = clapton(problem, config=config_b)
        # losses may coincide (same optimum) but the engines must have run
        assert a.engine.num_evaluations > 0 and b.engine.num_evaluations > 0

    def test_vqe_seeded_reproducibility(self):
        problem = VQEProblem.logical(
            ising_model(3, 1.0),
            noise_model=NoiseModel.uniform(3, depol_1q=1e-3, depol_2q=1e-2,
                                           readout=0.02, t1=80e-6))
        init = cafqa(problem, config=TINY_ENGINE)
        t1 = run_vqe(init, maxiter=10, shots=512, seed=7)
        t2 = run_vqe(init, maxiter=10, shots=512, seed=7)
        np.testing.assert_allclose(t1.final_theta, t2.final_theta)
        assert t1.history == t2.history


class TestCafqaQuality:
    def test_cafqa_noiseless_accuracy_easy_regime(self):
        """CAFQA's claim (Sec. 2.5): stabilizer initialization reaches a
        large fraction of the ground energy when stabilizer states
        approximate it well (XXZ at small J)."""
        h = xxz_model(5, 0.25)
        problem = VQEProblem.logical(h)
        result = cafqa(problem, config=SMOKE_ENGINE)
        e0 = ground_state_energy(h)
        # accuracy measured against the mixed-state zero point
        accuracy = result.loss / e0  # both negative side
        assert accuracy > 0.85

    def test_cafqa_weaker_in_hard_regime(self):
        """At J = 1.0 stabilizer states cannot represent the ground state
        as well -- the motivation for running full VQE afterwards."""
        easy = xxz_model(5, 0.25)
        hard = xxz_model(5, 1.00)
        easy_frac = cafqa(VQEProblem.logical(easy), config=SMOKE_ENGINE).loss \
            / ground_state_energy(easy)
        hard_frac = cafqa(VQEProblem.logical(hard), config=SMOKE_ENGINE).loss \
            / ground_state_energy(hard)
        assert easy_frac > hard_frac


class TestDeeperAnsatz:
    def test_clapton_with_layered_skeleton(self):
        """Clapton works with a deeper ansatz: build a problem whose eval
        ansatz has two entangling layers and verify the loss pipeline."""
        from repro.circuits import layered_hardware_efficient_ansatz

        n = 4
        h = ising_model(n, 1.0)
        nm = NoiseModel.uniform(n, depol_1q=1e-3, depol_2q=1e-2,
                                readout=0.02, t1=80e-6)
        problem = VQEProblem.logical(h, noise_model=nm)
        # swap in the deeper ansatz (the bundle accepts any 2N(reps+1)
        # parameterization whose zero point fixes |0...0>)
        problem.eval_ansatz = layered_hardware_efficient_ansatz(n, reps=2)
        skeleton = problem.skeleton()
        assert skeleton.count_ops() == {"cx": 2 * 4}
        result = clapton(problem, config=TINY_ENGINE)
        ev = evaluate_initial_point(result)
        assert ev.device_model >= ground_state_energy(h) - 1e-9
        # deeper skeleton -> more noise locations -> weaker-or-equal noisy
        # energy than the same transformation under the shallow skeleton
        shallow = VQEProblem.logical(h, noise_model=nm)
        from repro.core import ClaptonLoss

        ln_deep, _ = ClaptonLoss(problem).components(result.genome)
        ln_shallow, _ = ClaptonLoss(shallow).components(result.genome)
        assert abs(ln_deep) <= abs(ln_shallow) + 1e-9
