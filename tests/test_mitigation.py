"""Tests for gate folding, zero-noise extrapolation, and readout mitigation."""

import math

import numpy as np
import pytest

from repro.circuits import Circuit, ansatz_skeleton
from repro.densesim import noisy_energy, simulate_statevector
from repro.mitigation import (
    confusion_matrices,
    counts_to_probabilities,
    exponential_extrapolation,
    fold_gates,
    fold_global,
    fold_template_global,
    linear_extrapolation,
    mitigate_counts,
    mitigate_probabilities,
    richardson_extrapolation,
    z_expectation_from_probabilities,
    zne_energy,
)
from repro.noise import NoiseModel
from repro.paulis import PauliSum


def sample_circuit():
    circ = Circuit(3)
    circ.h(0).cx(0, 1).ry(0.4, 2).cx(1, 2).s(0)
    return circ


class TestFolding:
    @pytest.mark.parametrize("scale", [1, 3, 5])
    def test_global_folding_preserves_unitary(self, scale):
        circ = sample_circuit()
        folded = fold_global(circ, scale)
        np.testing.assert_allclose(folded.unitary(), circ.unitary(),
                                   atol=1e-10)
        assert len(folded) == scale * len(circ)

    @pytest.mark.parametrize("scale", [3, 5])
    def test_gate_folding_preserves_unitary(self, scale):
        circ = sample_circuit()
        folded = fold_gates(circ, scale, two_qubit_only=False)
        np.testing.assert_allclose(folded.unitary(), circ.unitary(),
                                   atol=1e-10)

    def test_two_qubit_only_folding(self):
        circ = sample_circuit()
        folded = fold_gates(circ, 3, two_qubit_only=True)
        assert folded.count_ops()["cx"] == 3 * circ.count_ops()["cx"]
        assert folded.count_ops()["h"] == circ.count_ops()["h"]

    def test_even_scale_rejected(self):
        with pytest.raises(ValueError):
            fold_global(sample_circuit(), 2)
        with pytest.raises(ValueError):
            fold_gates(sample_circuit(), 0)

    def test_folding_amplifies_noise(self):
        """More folds, more decay of the noisy expectation magnitude."""
        nm = NoiseModel.uniform(3, depol_1q=2e-3, depol_2q=2e-2,
                                readout=0.0, t1=None)
        h = PauliSum.from_terms([(1.0, "ZZZ")])
        circ = ansatz_skeleton(3)
        values = [noisy_energy(fold_gates(circ, s), h, nm) for s in (1, 3, 5)]
        assert values[0] > values[1] > values[2] > 0


class TestExtrapolation:
    def test_linear_recovers_line(self):
        scales = [1, 3, 5]
        values = [2.0 - 0.3 * s for s in scales]
        assert linear_extrapolation(scales, values) == pytest.approx(2.0)

    def test_richardson_recovers_quadratic(self):
        scales = [1, 3, 5]
        values = [1.0 + 0.2 * s - 0.05 * s * s for s in scales]
        assert richardson_extrapolation(scales, values) == pytest.approx(1.0)
        with pytest.raises(ValueError):
            richardson_extrapolation([1, 1, 3], values)

    def test_exponential_recovers_decay(self):
        scales = [1, 3, 5]
        values = [-2.0 * math.exp(-0.25 * s) for s in scales]
        assert exponential_extrapolation(scales, values) == pytest.approx(
            -2.0, rel=1e-6)

    def test_exponential_with_asymptote(self):
        scales = [1, 3, 5]
        values = [1.5 + 0.8 * math.exp(-0.4 * s) for s in scales]
        assert exponential_extrapolation(scales, values, asymptote=1.5) \
            == pytest.approx(1.5 + 0.8, rel=1e-6)


class TestZNE:
    def test_mitigated_closer_to_ideal(self):
        """On a Pauli-noise-only circuit ZNE must recover a large part of
        the gap to the noiseless expectation."""
        nm = NoiseModel.uniform(3, depol_1q=1e-3, depol_2q=1e-2,
                                readout=0.0, t1=None)
        h = PauliSum.from_terms([(1.0, "ZZI"), (0.5, "IZZ")])
        circ = ansatz_skeleton(3)
        ideal = 1.5  # all-zeros state
        result = zne_energy(circ, h, nm, scales=(1, 3, 5),
                            method="exponential")
        raw_gap = abs(result.unmitigated - ideal)
        mitigated_gap = abs(result.mitigated - ideal)
        assert mitigated_gap < 0.35 * raw_gap

    def test_linear_and_richardson_run(self):
        nm = NoiseModel.uniform(2, depol_1q=2e-3, depol_2q=2e-2,
                                readout=0.01, t1=60e-6)
        h = PauliSum.from_terms([(1.0, "ZZ")])
        circ = Circuit(2)
        circ.cx(0, 1)
        for method in ("linear", "richardson"):
            result = zne_energy(circ, h, nm, scales=(1, 3, 5), method=method)
            assert result.method == method
            assert result.mitigated >= result.unmitigated  # recovers toward 1

    def test_validation(self):
        nm = NoiseModel.noiseless(2)
        h = PauliSum.from_terms([(1.0, "ZZ")])
        circ = Circuit(2)
        circ.cx(0, 1)
        with pytest.raises(ValueError):
            zne_energy(circ, h, nm, scales=(3, 5))
        with pytest.raises(ValueError):
            zne_energy(circ, h, nm, method="cubic")
        with pytest.raises(ValueError):
            zne_energy(circ, h, nm, folding="pulse")


class TestReadoutMitigation:
    def test_counts_to_probabilities(self):
        probs = counts_to_probabilities({"00": 3, "11": 1}, 2)
        np.testing.assert_allclose(probs, [0.75, 0, 0, 0.25])
        with pytest.raises(ValueError):
            counts_to_probabilities({"0": 1}, 2)
        with pytest.raises(ValueError):
            counts_to_probabilities({}, 1)

    def test_inversion_exact_on_infinite_shots(self):
        """Applying confusion then its inverse recovers the distribution."""
        nm = NoiseModel(num_qubits=2, depol_1q=0.0, depol_2q_default=0.0,
                        readout_p01=np.array([0.05, 0.02]),
                        readout_p10=np.array([0.08, 0.11]))
        rng = np.random.default_rng(0)
        true = rng.dirichlet(np.ones(4))
        matrices = confusion_matrices(nm)
        noisy = true.reshape(2, 2)
        noisy = np.tensordot(matrices[0], noisy, axes=([1], [0]))
        noisy = np.moveaxis(np.tensordot(matrices[1], noisy, axes=([1], [1])),
                            0, 1).reshape(4)
        recovered = mitigate_probabilities(noisy, matrices, clip=False)
        np.testing.assert_allclose(recovered, true, atol=1e-12)

    def test_mitigate_counts_improves_z_expectation(self):
        nm = NoiseModel(num_qubits=1, depol_1q=0.0, depol_2q_default=0.0,
                        readout_p01=np.array([0.06]),
                        readout_p10=np.array([0.12]))
        rng = np.random.default_rng(1)
        # true state |0>: ideal <Z> = 1; simulate noisy readout counts
        flips = rng.random(20000) < 0.06
        counts = {"0": int((~flips).sum()), "1": int(flips.sum())}
        raw = counts_to_probabilities(counts, 1)
        raw_z = z_expectation_from_probabilities(raw, [0])
        mitigated = mitigate_counts(counts, nm)
        mit_z = z_expectation_from_probabilities(mitigated, [0])
        assert abs(mit_z - 1.0) < abs(raw_z - 1.0)

    def test_z_expectation_from_probabilities(self):
        probs = np.array([0.5, 0, 0, 0.5])  # (|00>+|11>)/sqrt(2) outcomes
        assert z_expectation_from_probabilities(probs, [0, 1]) == 1.0
        assert z_expectation_from_probabilities(probs, [0]) == 0.0

    def test_clip_projects_to_simplex(self):
        nm = NoiseModel(num_qubits=1, depol_1q=0.0, depol_2q_default=0.0,
                        readout_p01=np.array([0.3]),
                        readout_p10=np.array([0.3]))
        # distribution impossible under that much noise -> negative quasi-prob
        mitigated = mitigate_counts({"0": 999, "1": 1}, nm)
        assert (mitigated >= 0).all()
        assert mitigated.sum() == pytest.approx(1.0)


class TestExtrapolationHardening:
    """Degenerate curves must raise clear ValueErrors, never fit garbage."""

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="matching 1-D"):
            linear_extrapolation([1, 3, 5], [1.0, 2.0])
        with pytest.raises(ValueError, match="matching 1-D"):
            richardson_extrapolation([[1, 3]], [[1.0, 2.0]])

    def test_too_few_points_rejected(self):
        for extrapolate in (linear_extrapolation, richardson_extrapolation,
                            exponential_extrapolation):
            with pytest.raises(ValueError, match="at least two"):
                extrapolate([1], [0.5])
            with pytest.raises(ValueError):
                extrapolate([], [])

    def test_non_finite_rejected(self):
        with pytest.raises(ValueError, match="finite"):
            linear_extrapolation([1, 3], [1.0, float("nan")])
        with pytest.raises(ValueError, match="finite"):
            exponential_extrapolation([1, float("inf")], [1.0, 0.5])

    def test_richardson_duplicate_scales_rejected(self):
        with pytest.raises(ValueError, match="distinct scales"):
            richardson_extrapolation([1, 3, 3], [1.0, 0.5, 0.4])

    def test_exponential_needs_distinct_scales(self):
        with pytest.raises(ValueError, match="distinct scales"):
            exponential_extrapolation([3, 3], [0.5, 0.4])

    def test_exponential_value_on_asymptote_rejected(self):
        with pytest.raises(ValueError, match="asymptote"):
            exponential_extrapolation([1, 3, 5], [0.5, 0.0, 0.1])
        with pytest.raises(ValueError, match="asymptote"):
            exponential_extrapolation([1, 3], [2.0, 1.5], asymptote=1.5)

    def test_exponential_sign_change_rejected(self):
        with pytest.raises(ValueError, match="sign"):
            exponential_extrapolation([1, 3, 5], [0.5, -0.2, 0.1])

    def test_exponential_growth_rejected(self):
        with pytest.raises(ValueError, match="decay"):
            exponential_extrapolation([1, 3, 5], [0.1, 0.2, 0.4])
        # growing magnitudes on the negative side too
        with pytest.raises(ValueError, match="decay"):
            exponential_extrapolation([1, 3, 5], [-0.1, -0.2, -0.4])

    def test_zne_energy_falls_back_to_linear_on_degenerate_curve(self):
        """A noiseless model gives a flat curve the exponential fit cannot
        describe; zne_energy must fall back instead of raising."""
        nm = NoiseModel.noiseless(2)
        h = PauliSum.from_terms([(1.0, "ZZ")])
        circ = Circuit(2)
        circ.cx(0, 1)
        result = zne_energy(circ, h, nm, method="exponential")
        assert result.mitigated == pytest.approx(result.unmitigated)


class TestTemplateFolding:
    """fold_template_global: global folding of *parameterized* templates."""

    def template(self):
        from repro.circuits import hardware_efficient_ansatz

        return hardware_efficient_ansatz(3)

    @pytest.mark.parametrize("scale", [1, 3, 5])
    def test_bound_fold_matches_folding_the_bound_circuit(self, scale):
        template = self.template()
        num_params = template.num_parameters
        theta = np.linspace(-0.7, 0.9, num_params)
        folded = fold_template_global(template, scale)
        assert folded.num_parameters == scale * num_params
        # block b binds theta with alternating sign (inverse blocks)
        theta_ext = np.hstack([theta if b % 2 == 0 else -theta
                               for b in range(scale)])
        reference = fold_global(template.bind(theta), scale)
        np.testing.assert_allclose(folded.bind(theta_ext).unitary(),
                                   reference.unitary(), atol=1e-10)

    def test_bound_template_folds_like_fold_global(self):
        circ = sample_circuit()  # no symbolic parameters
        folded = fold_template_global(circ, 3)
        np.testing.assert_allclose(folded.unitary(),
                                   fold_global(circ, 3).unitary(),
                                   atol=1e-10)

    def test_even_scale_rejected(self):
        with pytest.raises(ValueError):
            fold_template_global(self.template(), 2)
        with pytest.raises(ValueError):
            fold_template_global(self.template(), 0)
