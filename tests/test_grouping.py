"""Tests for measurement grouping and the counts-based energy estimator."""

import numpy as np
import pytest

from repro.core import VQEProblem, cafqa
from repro.hamiltonians import ising_model, xxz_model
from repro.noise import NoiseModel
from repro.optim import EngineConfig
from repro.paulis import PauliSum
from repro.vqe import (
    CountsEnergyEstimator,
    EnergyEstimator,
    group_qubit_wise_commuting,
    num_measurement_bases,
)

ENGINE = EngineConfig(num_instances=1, generations_per_round=8, top_k=3,
                      population_size=12, retry_rounds=0, seed=0)


class TestGrouping:
    def test_groups_cover_all_nonidentity_terms(self):
        h = xxz_model(5, 0.5)
        groups = group_qubit_wise_commuting(h)
        covered = sorted(i for g in groups for i in g.term_indices)
        identity_count = sum(
            1 for _, p in h.terms() if p.is_identity)
        assert len(covered) == h.num_terms - identity_count
        assert covered == sorted(set(covered))  # no duplicates

    def test_group_internal_compatibility(self):
        h = xxz_model(6, 1.0)
        codes = (h.table.x.astype(int) + 2 * h.table.z.astype(int))
        for group in group_qubit_wise_commuting(h):
            basis = np.array([{"I": 0, "X": 1, "Z": 2, "Y": 3}[c]
                              for c in group.basis])
            for idx in group.term_indices:
                term = codes[idx]
                assert np.all((term == 0) | (term == basis))

    def test_ising_groups_efficiently(self):
        """Ising terms split into an all-X-pairs group and an all-Z group."""
        h = ising_model(6, 1.0)
        assert num_measurement_bases(h) <= 3

    def test_identity_term_skipped(self):
        h = PauliSum.from_terms([(2.0, "II"), (1.0, "ZZ")])
        groups = group_qubit_wise_commuting(h)
        assert len(groups) == 1

    def test_basis_rotation_measures_correctly(self):
        """Rotations map each group's basis Paulis onto Z strings."""
        from repro.stabilizer import CliffordTableau
        from repro.paulis import PauliString

        h = PauliSum.from_terms([(1.0, "XY"), (0.5, "XI")])
        (group,) = group_qubit_wise_commuting(h)
        rotation = group.basis_rotation(2)
        tableau = CliffordTableau.from_circuit(rotation)
        for _, pauli in h.terms():
            image = tableau.conjugate_pauli(pauli)
            assert image.is_z_type


class TestCountsEstimator:
    def make_problem(self):
        h = ising_model(3, 1.0)
        nm = NoiseModel(num_qubits=3, depol_1q=1e-3, depol_2q_default=8e-3,
                        readout_p01=np.full(3, 0.015),
                        readout_p10=np.full(3, 0.03), t1=np.full(3, 80e-6))
        return VQEProblem.logical(h, noise_model=nm)

    def test_matches_exact_estimator_within_shot_noise(self):
        problem = self.make_problem()
        exact = EnergyEstimator(problem, problem.mapped_hamiltonian())
        counts = CountsEnergyEstimator(problem, problem.mapped_hamiltonian(),
                                       shots=20000, seed=0)
        theta = np.zeros(problem.num_vqe_parameters)
        e_exact = exact.energy(theta)
        e_counts = counts.energy(theta)
        # note: the exact estimator uses the symmetrized-linear readout
        # attenuation; the counts path samples the true asymmetric
        # confusion, so agreement is to shot noise + asymmetry cross terms
        assert e_counts == pytest.approx(e_exact, abs=0.15)

    def test_readout_mitigation_reduces_bias(self):
        problem = self.make_problem()
        noiseless_problem = VQEProblem.logical(
            ising_model(3, 1.0), noise_model=NoiseModel.noiseless(3))
        ideal = EnergyEstimator(noiseless_problem,
                                noiseless_problem.mapped_hamiltonian())
        theta = np.zeros(problem.num_vqe_parameters)
        reference = ideal.energy(theta)

        raw = CountsEnergyEstimator(problem, problem.mapped_hamiltonian(),
                                    shots=40000, seed=1)
        mitigated = CountsEnergyEstimator(problem,
                                          problem.mapped_hamiltonian(),
                                          shots=40000, seed=1,
                                          readout_mitigation=True)
        e_raw = raw.energy(theta)
        e_mit = mitigated.energy(theta)
        # readout mitigation removes the readout part of the bias; gate and
        # relaxation noise remain, so compare gap magnitudes
        assert abs(e_mit - reference) < abs(e_raw - reference)

    def test_number_of_bases_reported(self):
        problem = self.make_problem()
        estimator = CountsEnergyEstimator(problem,
                                          problem.mapped_hamiltonian(),
                                          shots=128)
        assert estimator.num_bases == num_measurement_bases(
            problem.mapped_hamiltonian())

    def test_seeded_determinism(self):
        problem = self.make_problem()
        theta = np.zeros(problem.num_vqe_parameters)
        a = CountsEnergyEstimator(problem, problem.mapped_hamiltonian(),
                                  shots=1024, seed=5).energy(theta)
        b = CountsEnergyEstimator(problem, problem.mapped_hamiltonian(),
                                  shots=1024, seed=5).energy(theta)
        assert a == b

    def test_works_after_initialization_method(self):
        """Counts estimation of a CAFQA initial point end to end."""
        problem = self.make_problem()
        result = cafqa(problem, config=ENGINE)
        estimator = CountsEnergyEstimator(problem,
                                          result.initial_observable(),
                                          shots=8000, seed=2)
        value = estimator.energy(result.initial_theta)
        exact = EnergyEstimator(problem, result.initial_observable())
        assert value == pytest.approx(exact.energy(result.initial_theta),
                                      abs=0.2)
