"""Tests for the open method & benchmark registries.

The acceptance-critical behaviors live here: a method registered from
user code (no core edits) runs through ``Experiment.run`` and a campaign,
round-trips through ``MethodRun`` serialization, and the built-in trio's
numbers are bit-identical to pre-refactor goldens.
"""

import numpy as np
import pytest

from repro.campaigns import (
    CampaignAggregate,
    CampaignRunner,
    CampaignSpec,
    ResultStore,
    render_report,
)
from repro.core import CafqaLoss, VQEProblem
from repro.experiments import Experiment, ExperimentResult
from repro.hamiltonians import (
    expand_benchmarks,
    get_benchmark,
    ising_model,
    register_benchmark,
    register_suite,
    unregister_benchmark,
)
from repro.hamiltonians.registry import _SUITES, parse_benchmark_spec
from repro.methods import (
    DEFAULT_METHODS,
    DecodedPoint,
    InitializationMethod,
    get_method,
    method_names,
    register_method,
    resolve_methods,
    unregister_method,
)
from repro.noise import NoiseModel
from repro.optim import EngineConfig

TINY = EngineConfig(num_instances=1, generations_per_round=6, top_k=3,
                    population_size=10, retry_rounds=0, seed=0)
TINY_OVERRIDES = {"num_instances": 1, "generations_per_round": 6,
                  "top_k": 3, "population_size": 10, "retry_rounds": 0}


def tiny_problem(n=3):
    h = ising_model(n, 1.0)
    nm = NoiseModel.uniform(n, depol_1q=1e-3, depol_2q=1e-2,
                            readout=0.02, t1=80e-6)
    return h, VQEProblem.logical(h, noise_model=nm)


class EveryOtherQubit(InitializationMethod):
    """A user-defined method: X on every other qubit (no core edits)."""

    name = "every_other"
    description = "deterministic test method: pi flips on even qubits"

    def num_parameters(self, problem):
        return problem.num_vqe_parameters

    def make_loss(self, problem):
        return CafqaLoss(problem, noise_aware=False)

    def decode(self, problem, genome):
        from repro.circuits import cafqa_angles

        return DecodedPoint(vqe_hamiltonian=problem.hamiltonian,
                            initial_theta=cafqa_angles(genome))


@pytest.fixture()
def custom_method():
    register_method(EveryOtherQubit)
    yield "every_other"
    unregister_method("every_other")


class TestRegistry:
    def test_builtins_registered_in_order(self):
        names = method_names()
        assert names[:3] == DEFAULT_METHODS == ("cafqa", "ncafqa",
                                                "clapton")
        assert "vanilla" in names and "random_clifford" in names

    def test_get_method_did_you_mean(self):
        with pytest.raises(KeyError, match="did you mean 'clapton'"):
            get_method("claptn")

    def test_resolve_methods_defaults_and_errors(self):
        assert [m.name for m in resolve_methods()] == list(DEFAULT_METHODS)
        assert [m.name for m in resolve_methods("cafqa")] == ["cafqa"]
        with pytest.raises(ValueError, match="unknown methods"):
            resolve_methods(("cafqa", "bogus"))
        with pytest.raises(TypeError):
            resolve_methods([42])

    def test_duplicate_registration_rejected(self, custom_method):
        with pytest.raises(ValueError, match="already registered"):
            register_method(EveryOtherQubit)
        register_method(EveryOtherQubit(), replace=True)  # explicit wins

    def test_methods_shim_warns_and_reflects_trio(self):
        with pytest.warns(DeprecationWarning, match="METHODS"):
            from repro.experiments import METHODS
        assert tuple(METHODS) == DEFAULT_METHODS
        with pytest.warns(DeprecationWarning):
            from repro.experiments.runners import METHODS as runner_methods
        assert tuple(runner_methods) == DEFAULT_METHODS


class TestGoldens:
    """Pre-refactor numbers (captured on main at PR-2) must not move."""

    GOLDEN = {
        # method: (loss, noiseless, clifford_model, device_model, vqe_final)
        "cafqa": (-2.0, -2.0, -1.7658963480585337, -1.719145842315313,
                  -1.9002364730068808),
        "ncafqa": (-5.78642728393679, -3.0, -2.7864272839367903,
                   -2.7508164177394616, -2.7314944853765724),
        "clapton": (-5.798842256497777, -3.0, -2.7988422564977773,
                    -2.7993338467399473, -2.835169571109581),
    }

    def test_builtin_trio_bit_identical(self):
        h, problem = tiny_problem()
        result = Experiment(h, problem=problem, name="golden").run(
            config=TINY, vqe_iterations=3, seed=0)
        assert result.e0 == -3.4939592074349344
        for method, (loss, noiseless, clifford, device,
                     vqe_final) in self.GOLDEN.items():
            run = result.runs[method]
            assert run.loss == loss
            assert run.evaluation.noiseless == noiseless
            assert run.evaluation.clifford_model == clifford
            assert run.evaluation.device_model == device
            assert run.vqe.final_energy == vqe_final


class TestCustomMethodEndToEnd:
    def test_runs_through_experiment_and_serializes(self, custom_method):
        h, problem = tiny_problem()
        result = Experiment(h, problem=problem, name="custom").run(
            methods=("every_other", "clapton"), config=TINY,
            vqe_iterations=2, seed=0)
        assert set(result.runs) == {"every_other", "clapton"}
        run = result.runs["every_other"]
        assert np.isfinite(run.evaluation.device_model)
        assert np.isfinite(result.eta_initial("every_other"))
        # MethodRun round trip through plain JSON
        import json

        payload = json.loads(json.dumps(result.to_dict()))
        restored = ExperimentResult.from_dict(payload)
        assert restored.runs["every_other"].loss == run.loss
        assert restored.runs["every_other"].evaluation == run.evaluation
        np.testing.assert_array_equal(
            restored.runs["every_other"].genome, run.genome)
        assert (restored.runs["every_other"].vqe.final_energy
                == run.vqe.final_energy)

    def test_runs_through_campaign(self, custom_method, tmp_path):
        spec = CampaignSpec(
            name="custom-campaign", benchmarks=["ising_J1.00"],
            qubit_sizes=[3], noise_scales=[1.0],
            methods=["every_other", "clapton"], seeds=[0],
            engine_preset="smoke", engine_overrides=TINY_OVERRIDES)
        assert spec.num_tasks == 2
        store = ResultStore.create(tmp_path / "store.campaign", spec)
        progress = CampaignRunner(spec, store).run()
        assert progress.completed == 2 and store.counts()["failed"] == 0
        aggregate = CampaignAggregate.from_store(store)
        assert {r["method"] for r in aggregate.rows} \
            == {"every_other", "clapton"}
        etas = aggregate.eta_rows(baseline="every_other")
        assert len(etas) == 1 and np.isfinite(etas[0]["eta"])
        report = render_report(store)
        assert "every_other" in report
        assert "eta(clapton vs every_other)" in report

    def test_store_readable_without_registration(self, custom_method,
                                                 tmp_path, capsys):
        """status/report must work in a process that never registered the
        campaign's custom method."""
        from repro.cli import main

        spec = CampaignSpec(
            name="orphan", benchmarks=["ising_J1.00"], qubit_sizes=[3],
            noise_scales=[1.0], methods=["every_other"], seeds=[0],
            engine_preset="smoke", engine_overrides=TINY_OVERRIDES)
        store_path = tmp_path / "orphan.campaign"
        store = ResultStore.create(store_path, spec)
        CampaignRunner(spec, store).run()
        unregister_method("every_other")  # simulate a fresh process
        reopened = ResultStore.open(store_path)
        assert reopened.counts()["done"] == 1
        assert "every_other" in render_report(reopened)
        assert main(["status", str(store_path)]) == 0
        assert main(["report", str(store_path)]) == 0
        assert "every_other" in capsys.readouterr().out
        # but declaring a *new* spec with the unregistered name still fails
        with pytest.raises(ValueError, match="unknown methods"):
            CampaignSpec(name="x", benchmarks=["ising_J1.00"],
                         methods=["every_other"])

    def test_report_rejects_typoed_improver(self, custom_method, tmp_path,
                                            capsys):
        from repro.cli import main

        spec = CampaignSpec(
            name="imp", benchmarks=["ising_J1.00"], qubit_sizes=[3],
            noise_scales=[1.0], methods=["every_other", "cafqa"],
            seeds=[0], engine_preset="smoke",
            engine_overrides=TINY_OVERRIDES)
        store_path = tmp_path / "imp.campaign"
        CampaignRunner(spec, ResultStore.create(store_path, spec)).run()
        assert main(["report", str(store_path),
                     "--improver", "every_othr"]) == 2
        assert "not a method of this campaign" in capsys.readouterr().err
        assert main(["report", str(store_path),
                     "--improver", "every_other"]) == 0
        assert "eta(every_other vs cafqa)" in capsys.readouterr().out
        # default improver absent from a grid: report still renders
        assert main(["report", str(store_path)]) == 0

    def test_runs_through_cli_run_and_sweep(self, custom_method, tmp_path,
                                            capsys, monkeypatch):
        """The acceptance flow: user registration, then the CLI verbs."""
        import json

        from repro.cli import main

        monkeypatch.setenv("CLAPTON_BENCH_PRESET", "smoke")
        assert main(["run", "ising_J1.00", "--backend", "nairobi",
                     "--qubits", "3", "--methods",
                     "every_other,clapton"]) == 0
        out = capsys.readouterr().out
        assert "-- every_other --" in out

        spec_path = tmp_path / "grid.json"
        spec_path.write_text(json.dumps({
            "name": "custom-cli", "benchmarks": ["ising_J1.00"],
            "qubit_sizes": [3], "noise_scales": [1.0],
            "methods": ["every_other", "clapton"], "seeds": [0],
            "engine_preset": "smoke",
            "engine_overrides": TINY_OVERRIDES}))
        assert main(["sweep", str(spec_path)]) == 0
        assert main(["report",
                     str(spec_path.with_suffix(".campaign"))]) == 0
        out = capsys.readouterr().out
        assert "eta(clapton vs every_other)" in out

    def test_unregistered_name_fails_with_suggestions(self):
        h, problem = tiny_problem()
        with pytest.raises(ValueError, match="registered methods"):
            Experiment(h, problem=problem).run(methods=("every_other",),
                                               config=TINY)
        with pytest.raises(ValueError, match="unknown methods"):
            CampaignSpec(name="x", benchmarks=["ising_J1.00"],
                         methods=["every_other"])


class TestEtaImprover:
    def test_eta_with_custom_improver_and_keyerror(self):
        h, problem = tiny_problem()
        result = Experiment(h, problem=problem).run(
            methods=("cafqa", "ncafqa"), config=TINY)
        eta = result.eta_initial("cafqa", improver="ncafqa")
        assert np.isfinite(eta)
        with pytest.raises(KeyError,
                           match=r"no 'clapton' run.*available runs"):
            result.eta_initial("cafqa")  # default improver missing
        with pytest.raises(KeyError, match="available runs"):
            result.eta_final("bogus", improver="cafqa")

    def test_eta_without_evaluations_or_traces(self):
        h, problem = tiny_problem()
        result = Experiment(h, problem=problem).run(
            methods=("cafqa", "clapton"), config=TINY,
            evaluate_tiers=False)
        with pytest.raises(ValueError, match="evaluate_tiers"):
            result.eta_initial("cafqa")
        with pytest.raises(ValueError, match="vqe_iterations"):
            result.eta_final("cafqa")


class TestExtraMethods:
    def test_vanilla_is_theta_zero(self):
        h, problem = tiny_problem()
        result = Experiment(h, problem=problem).run(methods=("vanilla",),
                                                    config=TINY)
        run = result.runs["vanilla"]
        np.testing.assert_array_equal(run.genome,
                                      np.zeros_like(run.genome))
        # theta = 0 prepares |0...0>: the noiseless tier is exactly <0|H|0>
        assert run.evaluation.noiseless \
            == pytest.approx(h.expectation_all_zeros())
        assert run.engine_evaluations == 1

    def test_random_clifford_best_of_k(self):
        h, problem = tiny_problem()
        result = Experiment(h, problem=problem).run(
            methods=("random_clifford", "vanilla"), config=TINY)
        rc = result.runs["random_clifford"]
        # K = num_instances * population_size under the tiny config
        assert rc.engine_evaluations == 10
        # best-of-K screening can never lose to a single arbitrary draw's
        # loss bound; both decode through the same noiseless loss
        assert rc.loss <= result.runs["vanilla"].loss + 1e-12
        # deterministic for a fixed seed
        again = Experiment(h, problem=problem).run(
            methods=("random_clifford",), config=TINY)
        np.testing.assert_array_equal(
            again.runs["random_clifford"].genome, rc.genome)

    def test_random_clifford_parallel_matches_serial(self):
        from repro.execution import ThreadExecutor

        h, problem = tiny_problem()
        serial = Experiment(h, problem=problem).run(
            methods=("random_clifford",), config=TINY)
        with ThreadExecutor(3) as executor:
            parallel = Experiment(h, problem=problem).run(
                methods=("random_clifford",), config=TINY,
                executor=executor)
        np.testing.assert_array_equal(
            parallel.runs["random_clifford"].genome,
            serial.runs["random_clifford"].genome)
        assert parallel.runs["random_clifford"].loss \
            == serial.runs["random_clifford"].loss


class TestBenchmarkRegistry:
    def test_parameterized_spec_resolves(self):
        bench = get_benchmark("ising:n=4,J=0.5")
        assert bench.num_qubits == 4 and bench.kind == "physics"
        h = bench.hamiltonian()
        expected = ising_model(4, 0.5)
        assert {p.to_label(): c for c, p in h.terms()} \
            == {p.to_label(): c for c, p in expected.terms()}

    def test_bare_family_name_uses_defaults(self):
        assert get_benchmark("ising").num_qubits == 10
        assert get_benchmark("molecule").num_qubits == 10

    def test_num_qubits_flows_into_families(self):
        # bare family and n-less specs take the requested width ...
        assert get_benchmark("ising", 6).hamiltonian().num_qubits == 6
        assert get_benchmark("ising:J=0.5", 4).num_qubits == 4
        # ... but an explicit n always wins
        assert get_benchmark("ising:n=3,J=0.5", 8).num_qubits == 3

    def test_spec_parsing_and_errors(self):
        assert parse_benchmark_spec("ising:n=4,J=0.5") \
            == ("ising", {"n": 4, "J": 0.5})
        assert parse_benchmark_spec("molecule:name=LiH,l=1.5") \
            == ("molecule", {"name": "LiH", "l": 1.5})
        with pytest.raises(ValueError, match="key=value"):
            get_benchmark("ising:n4")
        with pytest.raises(ValueError, match="accepted"):
            get_benchmark("ising:qubits=4")  # unknown parameter
        with pytest.raises(KeyError, match="did you mean 'ising'"):
            get_benchmark("isng:n=4")
        with pytest.raises(KeyError, match="unknown benchmark"):
            get_benchmark("bogus_bench")

    def test_register_custom_family(self):
        @register_benchmark(name="testheis", kind="physics",
                            description="test family")
        def build(n: int = 4, J: float = 1.0):
            from repro.hamiltonians import xxz_model

            return xxz_model(n, J)

        try:
            bench = get_benchmark("testheis:n=3,J=0.25")
            assert bench.hamiltonian().num_qubits == 3
            # flows into a campaign grid
            spec = CampaignSpec(name="fam", benchmarks=["testheis:n=3"],
                                qubit_sizes=[3], methods=["cafqa"],
                                engine_preset="smoke",
                                engine_overrides=TINY_OVERRIDES)
            task = spec.tasks()[0]
            assert task.build_experiment().hamiltonian.num_qubits == 3
        finally:
            unregister_benchmark("testheis")

    def test_suites_expand_in_campaigns(self):
        assert expand_benchmarks(["suite:physics"]) \
            == list(_SUITES["physics"])
        spec = CampaignSpec(name="suite", benchmarks=["suite:physics"],
                            qubit_sizes=[3], methods=["cafqa"],
                            engine_preset="smoke",
                            engine_overrides=TINY_OVERRIDES)
        assert spec.num_tasks == 6
        assert {t.benchmark for t in spec.tasks()} \
            == set(_SUITES["physics"])
        with pytest.raises(ValueError, match="unknown suite"):
            CampaignSpec(name="x", benchmarks=["suite:bogus"],
                         methods=["cafqa"])

    def test_store_readable_without_suite_registration(self, tmp_path,
                                                       capsys):
        """status/report must work when the producer used a custom suite
        this process never registered."""
        from repro.cli import main

        register_suite("localsuite", ("ising_J1.00",))
        try:
            spec = CampaignSpec(
                name="suite-orphan", benchmarks=["suite:localsuite"],
                qubit_sizes=[3], noise_scales=[1.0], methods=["cafqa"],
                seeds=[0], engine_preset="smoke",
                engine_overrides=TINY_OVERRIDES)
            store_path = tmp_path / "so.campaign"
            store = ResultStore.create(store_path, spec)
            CampaignRunner(spec, store).run()
        finally:
            _SUITES.pop("localsuite", None)  # simulate a fresh process
        reopened = ResultStore.open(store_path)
        assert reopened.counts()["done"] == 1
        assert "ising_J1.00" in render_report(reopened)
        assert main(["status", str(store_path)]) == 0
        out = capsys.readouterr().out
        assert "not registered in this process" in out  # lower-bound note
        assert main(["report", str(store_path)]) == 0
        assert "cafqa" in capsys.readouterr().out

    def test_register_suite_and_duplicate_expansion_rejected(self):
        register_suite("testsuite", ("ising_J1.00", "xxz_J1.00"))
        try:
            assert expand_benchmarks(["suite:testsuite"]) \
                == ["ising_J1.00", "xxz_J1.00"]
            with pytest.raises(ValueError, match="duplicate"):
                CampaignSpec(name="dup",
                             benchmarks=["suite:testsuite", "ising_J1.00"],
                             methods=["cafqa"])
        finally:
            _SUITES.pop("testsuite", None)
