"""Tests for the distributed half of ``repro.obs``.

Trace-context propagation (scheduler -> lease -> worker span tags),
span shipping and the server-side merge into one per-campaign
``trace.jsonl``, kernel counters, the Chrome-trace exporter, and the
``repro bench compare`` perf-regression gate.  The Prometheus text
renderer's edge cases (+Inf buckets, label escaping) get a strict
line-format checker here because ``GET /metrics`` is scraped by real
collectors that reject malformed exposition.
"""

import json
import math
import re
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.campaigns import CampaignSpec
from repro.campaigns.service import (
    HttpSchedulerClient,
    LocalSchedulerClient,
    ServiceState,
    run_worker,
    start_server,
)
from repro.cli import main
from repro.obs import (
    KERNEL,
    Histogram,
    MetricRegistry,
    RecordingTracer,
    ShippingTracer,
    TraceContext,
    build_info,
    compare,
    export_chrome_trace,
    flatten_numeric,
    new_trace_id,
    parse_tolerance,
    parse_trace_lines,
    publish_kernel_metrics,
    render_prometheus,
    summarize_spans,
    to_chrome_trace,
    use_tracer,
)

TINY_OVERRIDES = {"num_instances": 1, "generations_per_round": 6,
                  "top_k": 3, "population_size": 10, "retry_rounds": 0}


def tiny_spec(**kwargs) -> dict:
    defaults = dict(name="obsd", benchmarks=["ising_J1.00"],
                    qubit_sizes=[3], noise_scales=[1.0],
                    methods=["clapton"], seeds=[0],
                    engine_preset="smoke",
                    engine_overrides=TINY_OVERRIDES)
    defaults.update(kwargs)
    return CampaignSpec(**defaults).to_dict()


def interval_coverage(spans: list[dict]) -> float:
    """Fraction of [first start, last end] covered by the span union."""
    intervals = sorted((s["start"], s["start"] + s["dur"]) for s in spans)
    wall = max(b for _, b in intervals) - intervals[0][0]
    if wall <= 0:
        return 1.0
    covered, (cur_a, cur_b) = 0.0, intervals[0]
    for a, b in intervals[1:]:
        if a > cur_b:
            covered += cur_b - cur_a
            cur_a, cur_b = a, b
        else:
            cur_b = max(cur_b, b)
    covered += cur_b - cur_a
    return covered / wall


# ----------------------------------------------------------------------
# TraceContext
# ----------------------------------------------------------------------
class TestTraceContext:
    def test_round_trip(self):
        ctx = TraceContext(trace_id=new_trace_id(), parent_span=7,
                           campaign="c-1", task_id="t1", worker="w0")
        assert TraceContext.from_dict(ctx.to_dict()) == ctx

    def test_to_dict_omits_empty_fields(self):
        wire = TraceContext(trace_id="abcd" * 4).to_dict()
        assert wire == {"trace_id": "abcd" * 4}

    @pytest.mark.parametrize("payload", [
        None, {}, {"campaign": "c"}, "nope", 42, ["trace_id"],
    ])
    def test_from_dict_tolerates_garbage(self, payload):
        assert TraceContext.from_dict(payload) is None

    def test_trace_ids_are_distinct_hex(self):
        ids = {new_trace_id() for _ in range(64)}
        assert len(ids) == 64
        assert all(re.fullmatch(r"[0-9a-f]{16}", t) for t in ids)


# ----------------------------------------------------------------------
# ShippingTracer
# ----------------------------------------------------------------------
class TestShippingTracer:
    def test_buffers_spans_and_batches(self):
        tracer = ShippingTracer()
        with tracer.span("worker.task", task_id="t1"):
            tracer.event("loss.shard", 0.01, batch=4)
        assert tracer.pending() == 2
        batch = tracer.batch("w0", "c-1")
        assert tracer.pending() == 0
        assert batch["worker_id"] == "w0" and batch["campaign"] == "c-1"
        assert {s["name"] for s in batch["spans"]} == {"worker.task",
                                                       "loss.shard"}
        # the anchor is wall-clock time of tracer construction, not a
        # perf_counter offset: the merge rebases span starts with it
        assert abs(batch["unix_t0"] - time.time()) < 60.0

    def test_requeue_preserves_order(self):
        tracer = ShippingTracer()
        tracer.event("a", 0.0)
        tracer.event("b", 0.0)
        first = tracer.drain()
        tracer.event("c", 0.0)
        tracer.requeue(first)
        assert [s["name"] for s in tracer.drain()] == ["a", "b", "c"]

    def test_passes_through_to_underlying(self):
        inner = RecordingTracer()
        tracer = ShippingTracer(inner)
        with tracer.span("worker.task"):
            pass
        assert tracer.pending() == 1
        assert [s["name"] for s in inner.spans] == ["worker.task"]


# ----------------------------------------------------------------------
# Kernel counters
# ----------------------------------------------------------------------
class TestKernelCounters:
    def test_snapshot_delta_add(self):
        before = KERNEL.snapshot()
        KERNEL.words += 10
        KERNEL.rows += 3
        delta = KERNEL.delta(before)
        assert delta["words"] == 10 and delta["rows"] == 3
        KERNEL.add({"words": 5})
        assert KERNEL.delta(before)["words"] == 15

    def test_packed_conjugation_advances_counters(self):
        from repro.circuits import Circuit
        from repro.stabilizer import CliffordTableau

        circ = Circuit(6)
        for q in range(6):
            circ.h(q)
        for q in range(5):
            circ.cx(q, q + 1)
        before = KERNEL.snapshot()
        CliffordTableau.from_circuit(circ)
        delta = KERNEL.delta(before)
        assert delta["words"] > 0 and delta["rows"] > 0

    def test_publish_is_monotonic_delta(self):
        from repro.obs import REGISTRY

        KERNEL.words += 7
        publish_kernel_metrics()
        first = REGISTRY.get("repro_kernel_words_total").total()
        publish_kernel_metrics()  # no new work: no double count
        assert REGISTRY.get("repro_kernel_words_total").total() == first
        KERNEL.words += 2
        publish_kernel_metrics()
        assert (REGISTRY.get("repro_kernel_words_total").total()
                == first + 2)


# ----------------------------------------------------------------------
# Collector: merge, rebase, namespacing, HTTP surface
# ----------------------------------------------------------------------
class TestCollector:
    def test_ingest_namespaces_and_rebases(self, tmp_path):
        state = ServiceState(root=tmp_path / "root")
        campaign, _ = state.submit(tiny_spec())
        t0 = time.time()
        accepted = campaign.ingest_spans("wA", t0 + 5.0, [
            {"kind": "span", "name": "worker.task", "start": 1.0,
             "dur": 0.5, "id": 1, "parent": None, "thread": "main",
             "tags": {}},
            {"kind": "span", "name": "loss.shard", "start": 1.1,
             "dur": 0.2, "id": 2, "parent": 1, "thread": "main",
             "tags": {}},
        ])
        assert accepted == 2
        meta, spans = parse_trace_lines(
            campaign.trace_text().splitlines())
        assert meta["merged"] and meta["campaign"] == campaign.id
        assert meta["trace_id"] == campaign.trace_id
        # the meta header is stamped for forensics (satellite a)
        info = build_info()
        assert meta["hostname"] == info["hostname"]
        assert meta["version"] == info["version"]
        child = next(s for s in spans if s["name"] == "loss.shard")
        assert child["id"] == "wA:2" and child["parent"] == "wA:1"
        assert child["worker"] == "wA"
        # rebased onto the campaign clock: anchor delta + local start
        parent = next(s for s in spans if s["name"] == "worker.task")
        shift = (t0 + 5.0) - meta["unix_t0"]
        assert parent["start"] == pytest.approx(1.0 + shift, abs=1e-6)
        state.close()

    def test_trace_survives_service_restart(self, tmp_path):
        state = ServiceState(root=tmp_path / "root")
        campaign, _ = state.submit(tiny_spec())
        campaign.ingest_spans("wA", time.time(), [
            {"kind": "span", "name": "a", "start": 0.0, "dur": 0.1,
             "id": 1, "parent": None, "thread": "main", "tags": {}}])
        trace_id = campaign.trace_id
        state.close()

        resumed = ServiceState(root=tmp_path / "root")
        campaign2, was_resumed = resumed.submit(tiny_spec())
        assert was_resumed
        campaign2.ingest_spans("wB", time.time(), [
            {"kind": "span", "name": "b", "start": 0.0, "dur": 0.1,
             "id": 1, "parent": None, "thread": "main", "tags": {}}])
        meta, spans = parse_trace_lines(
            campaign2.trace_text().splitlines())
        # ONE trace: same identity, spans from both service lifetimes
        assert meta["trace_id"] == trace_id
        assert {s["id"] for s in spans} == {"wA:1", "wB:1"}
        resumed.close()

    def test_http_trace_endpoints(self, tmp_path):
        state = ServiceState(root=tmp_path / "root")
        campaign, _ = state.submit(tiny_spec())
        server = start_server(state, port=0)
        try:
            url = f"{server.url}/trace?campaign={campaign.id}"
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(url, timeout=10)
            assert err.value.code == 404  # nothing ingested yet

            batch = {"worker_id": "wA", "campaign": campaign.id,
                     "unix_t0": time.time(),
                     "spans": [{"kind": "span", "name": "worker.task",
                                "start": 0.0, "dur": 0.1, "id": 1,
                                "parent": None, "thread": "main",
                                "tags": {"campaign": campaign.id}}]}
            req = urllib.request.Request(
                f"{server.url}/traces",
                data=json.dumps(batch).encode(),
                headers={"Content-Type": "application/json"})
            with urllib.request.urlopen(req, timeout=10) as resp:
                ack = json.loads(resp.read())
            assert ack["accepted"] == 1 and ack["dropped"] == 0

            with urllib.request.urlopen(url, timeout=10) as resp:
                assert resp.headers["Content-Type"].startswith(
                    "application/x-ndjson")
                text = resp.read().decode()
            meta, spans = parse_trace_lines(text.splitlines())
            assert spans[0]["id"] == "wA:1"
        finally:
            server.stop()

    def test_unknown_campaign_spans_are_dropped(self, tmp_path):
        state = ServiceState(root=tmp_path / "root")
        state.submit(tiny_spec())
        ack = state.ingest_traces({
            "worker_id": "wA", "campaign": "no-such-campaign",
            "unix_t0": time.time(),
            "spans": [{"kind": "span", "name": "x", "start": 0.0,
                       "dur": 0.1, "id": 1, "parent": None,
                       "thread": "main", "tags": {}}]})
        assert ack == {"accepted": 0, "dropped": 1}
        state.close()


# ----------------------------------------------------------------------
# End to end: worker loop ships, merge is queryable and coherent
# ----------------------------------------------------------------------
class TestFleetTrace:
    def run_fleet(self, tmp_path, client_of):
        state = ServiceState(root=tmp_path / "root")
        campaign, _ = state.submit(tiny_spec(seeds=[0, 1]))
        server = start_server(state, port=0)
        try:
            executed = run_worker(client_of(state, server), "wE2E",
                                  exit_on_idle=True, poll_interval=0.01)
            assert executed == 2
            meta, spans = parse_trace_lines(
                campaign.trace_text().splitlines())
        finally:
            server.stop()
        return campaign, meta, spans

    @pytest.mark.parametrize("client_of", [
        lambda state, server: LocalSchedulerClient(state),
        lambda state, server: HttpSchedulerClient(server.url),
    ], ids=["local", "http"])
    def test_one_merged_trace_with_full_context(self, tmp_path,
                                                client_of):
        campaign, meta, spans = self.run_fleet(tmp_path, client_of)
        assert meta["trace_id"] == campaign.trace_id
        tasks = [s for s in spans if s["name"] == "worker.task"]
        assert len(tasks) == 2
        for span in tasks:
            tags = span["tags"]
            assert tags["campaign"] == campaign.id
            assert tags["worker"] == "wE2E"
            assert tags["trace"] == campaign.trace_id
            assert tags["task_id"]
            assert str(span["id"]).startswith("wE2E:")
        # clean exit: the worker.run root makes inter-task glue its
        # self time, so the union of spans covers ~all of wall clock
        assert interval_coverage(spans) >= 0.95
        summary = summarize_spans(spans, meta)
        assert summary.kernel["wE2E"]["words"] > 0
        assert summary.buckets["kernel"] > 0.0

    def test_trace_summary_connect_cli(self, tmp_path, capsys):
        state = ServiceState(root=tmp_path / "root")
        campaign, _ = state.submit(tiny_spec())
        server = start_server(state, port=0)
        try:
            run_worker(HttpSchedulerClient(server.url), "wCLI",
                       exit_on_idle=True, poll_interval=0.01)
            rc = main(["trace", "summary", "--connect", server.url,
                       "--campaign", campaign.id, "--json"])
            assert rc == 0
            payload = json.loads(capsys.readouterr().out)
            assert payload["num_spans"] > 0
            assert "wCLI" in payload["kernel"]
        finally:
            server.stop()


# ----------------------------------------------------------------------
# Chrome-trace export
# ----------------------------------------------------------------------
class TestPerfettoExport:
    MERGED_META = {"kind": "meta", "merged": True, "trace_id": "t" * 16,
                   "campaign": "c-1", "unix_t0": 1000.0}
    MERGED_SPANS = [
        {"kind": "span", "name": "worker.task", "start": 0.5,
         "dur": 0.25, "id": "wA:1", "parent": None, "thread": "main",
         "worker": "wA", "tags": {"task_id": "t1"}},
        {"kind": "span", "name": "loss.shard", "start": 0.6, "dur": 0.1,
         "id": "wA:2", "parent": "wA:1", "thread": "main",
         "worker": "wA", "tags": {}},
        {"kind": "span", "name": "worker.task", "start": 0.55,
         "dur": 0.2, "id": "wB:1", "parent": None, "thread": "main",
         "worker": "wB", "tags": {}},
    ]

    def test_workers_get_process_lanes(self):
        doc = to_chrome_trace(self.MERGED_META, self.MERGED_SPANS)
        complete = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(complete) == 3
        # distinct workers land in distinct perfetto process lanes
        pids = {e["pid"] for e in complete}
        assert len(pids) == 2
        names = [e for e in doc["traceEvents"]
                 if e["ph"] == "M" and e["name"] == "process_name"]
        assert {m["args"]["name"] for m in names} == {"wA", "wB"}

    def test_microsecond_timestamps_and_categories(self):
        doc = to_chrome_trace(self.MERGED_META, self.MERGED_SPANS)
        task = next(e for e in doc["traceEvents"]
                    if e["ph"] == "X" and e["name"] == "worker.task"
                    and e["dur"] == pytest.approx(250000))
        assert task["ts"] == pytest.approx(500000)
        shard = next(e for e in doc["traceEvents"]
                     if e["name"] == "loss.shard")
        assert shard["cat"] == "loss_eval"

    def test_export_cli_round_trip(self, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        with trace.open("w") as fh:
            fh.write(json.dumps(self.MERGED_META) + "\n")
            for span in self.MERGED_SPANS:
                fh.write(json.dumps(span) + "\n")
        rc = main(["trace", "export", str(trace), "--perfetto"])
        assert rc == 0
        out_path = Path(str(trace) + ".perfetto.json")
        assert out_path.exists()
        doc = json.loads(out_path.read_text())
        assert doc["otherData"]["trace_id"] == "t" * 16
        assert any(e["ph"] == "X" for e in doc["traceEvents"])

    def test_export_bad_input_exits_2(self, tmp_path, capsys):
        assert main(["trace", "export",
                     str(tmp_path / "missing.jsonl")]) == 2


# ----------------------------------------------------------------------
# Perf-regression gate
# ----------------------------------------------------------------------
class TestBenchCompare:
    def test_flatten_paths_and_indices(self):
        flat = flatten_numeric({"a": {"b": 1.5},
                                "sizes": [{"s": 2.0}, {"s": 3.0}],
                                "name": "skip", "flag": True})
        assert flat == {"a.b": 1.5, "sizes[0].s": 2.0,
                        "sizes[1].s": 3.0}

    @pytest.mark.parametrize("text,expected", [
        ("15%", 0.15), ("0.15", 0.15), (" 7 % ", 0.07), ("1", 1.0),
    ])
    def test_parse_tolerance(self, text, expected):
        assert parse_tolerance(text) == pytest.approx(expected)

    @pytest.mark.parametrize("text", ["", "-5%", "abc", "15%%"])
    def test_parse_tolerance_rejects_garbage(self, text):
        with pytest.raises(ValueError):
            parse_tolerance(text)

    def test_identity_passes_and_regression_fails(self):
        base = {"losses": {"clapton": {"batched_seconds": 0.01,
                                       "speedup": 30.0}}}
        assert compare(base, base, tolerance=0.15).ok
        slow = {"losses": {"clapton": {"batched_seconds": 0.012,
                                       "speedup": 30.0}}}
        result = compare(slow, base, tolerance=0.15)
        assert [r.path for r in result.regressions] == \
            ["losses.clapton.batched_seconds"]

    def test_direction_awareness(self):
        base = {"speedup": 10.0, "seconds": 1.0}
        # higher speedup and lower seconds are improvements, not
        # regressions, however large the delta
        better = {"speedup": 20.0, "seconds": 0.5}
        assert compare(better, base, tolerance=0.05).ok
        worse = {"speedup": 5.0, "seconds": 1.0}
        assert not compare(worse, base, tolerance=0.05).ok

    def test_added_and_removed_metrics_never_fail(self):
        base = {"a_seconds": 1.0, "gone_seconds": 2.0}
        cur = {"a_seconds": 1.0, "new_seconds": 3.0}
        result = compare(cur, base, tolerance=0.0)
        assert result.ok
        statuses = {r.path: r.status for r in result.rows}
        assert statuses["new_seconds"] == "added"
        assert statuses["gone_seconds"] == "removed"

    def test_cli_exit_codes(self, tmp_path, capsys):
        base = tmp_path / "base.json"
        base.write_text(json.dumps({"x_seconds": 1.0}))
        same = tmp_path / "same.json"
        same.write_text(json.dumps({"x_seconds": 1.0}))
        slow = tmp_path / "slow.json"
        slow.write_text(json.dumps({"x_seconds": 1.2}))  # +20%

        assert main(["bench", "compare", str(same),
                     "--baseline", str(base)]) == 0
        assert "No regressions" in capsys.readouterr().out

        assert main(["bench", "compare", str(slow),
                     "--baseline", str(base),
                     "--tolerance", "15%"]) == 1
        assert "regression" in capsys.readouterr().out

        assert main(["bench", "compare", str(slow), "--baseline",
                     str(tmp_path / "missing.json")]) == 2
        assert main(["bench", "compare", str(slow),
                     "--baseline", str(base),
                     "--tolerance", "nope"]) == 2

    def test_committed_baselines_self_compare_clean(self):
        results = Path(__file__).resolve().parents[1] / \
            "benchmarks" / "bench_results"
        for path in sorted(results.glob("*.json")):
            payload = json.loads(path.read_text())
            assert compare(payload, payload, tolerance=0.0).ok, path


# ----------------------------------------------------------------------
# Prometheus exposition edge cases (satellite c)
# ----------------------------------------------------------------------
#: One exposition line: comment, or `name{labels} value` with a float,
#: integer, or +/-Inf/NaN value.  Deliberately strict about quoting.
_SAMPLE_RE = re.compile(
    r'^[a-zA-Z_:][a-zA-Z0-9_:]*'
    r'(\{[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\\n]|\\\\|\\"|\\n)*"'
    r'(,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\\n]|\\\\|\\"|\\n)*")*\})?'
    r' (?:[+-]?(?:\d+(?:\.\d+)?(?:e-?\d+)?|Inf)|NaN)$')


def check_exposition(text: str) -> int:
    """Strict line-format check; returns the number of sample lines."""
    assert text.endswith("\n"), "exposition must end with a newline"
    samples = 0
    for line in text.splitlines():
        if line.startswith("# HELP ") or line.startswith("# TYPE "):
            continue
        assert _SAMPLE_RE.match(line), f"malformed sample line: {line!r}"
        samples += 1
    return samples


class TestPrometheusEdgeCases:
    def test_histogram_inf_bucket_is_cumulative_total(self):
        registry = MetricRegistry()
        hist = registry.histogram("h_seconds", "h", buckets=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(50.0)  # beyond every finite bucket
        text = render_prometheus(registry)
        assert 'h_seconds_bucket{le="+Inf"} 2' in text
        assert 'h_seconds_bucket{le="1"} 1' in text
        assert "h_seconds_count 2" in text
        check_exposition(text)

    def test_label_values_escape_specials(self):
        registry = MetricRegistry()
        counter = registry.counter("c_total", "c")
        counter.inc(task='line1\nline2 "quoted" back\\slash')
        text = render_prometheus(registry)
        assert r'task="line1\nline2 \"quoted\" back\\slash"' in text
        assert "\nline2" not in text.replace(r"\nline2", "")
        check_exposition(text)

    def test_inf_and_integral_values_render(self):
        registry = MetricRegistry()
        gauge = registry.gauge("g", "g")
        gauge.set(math.inf, kind="inf")
        gauge.set(3.0, kind="int")
        text = render_prometheus(registry)
        assert 'g{kind="inf"} +Inf' in text
        assert 'g{kind="int"} 3' in text
        check_exposition(text)

    def test_live_registry_renders_strictly(self):
        from repro.obs import REGISTRY

        publish_kernel_metrics()
        assert check_exposition(render_prometheus(REGISTRY)) > 0
