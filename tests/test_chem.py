"""Tests for the quantum chemistry substrate.

Validation strategy: every layer is checked against an independent source of
truth -- closed-form Boys values, literature RHF energies, dense-matrix
anticommutation relations for the JW map, and sector-resolved exact
diagonalization for the parity reduction.
"""

import math
from functools import lru_cache

import numpy as np
import pytest

from repro.chem import (
    ANGSTROM_TO_BOHR,
    ActiveSpace,
    Atom,
    active_space_tensors,
    build_basis,
    jordan_wigner_ladder,
    jw_to_parity,
    molecular_hamiltonian,
    nuclear_repulsion,
    parity_two_qubit_reduction,
    run_rhf,
    spin_orbital_hamiltonian,
    taper_qubits,
)
from repro.chem.integrals import (
    boys,
    eri_tensor,
    hermite_coefficient,
    kinetic_matrix,
    nuclear_attraction_matrix,
    overlap_matrix,
)
from repro.hamiltonians import ground_state_energy
from repro.paulis import PauliSum


def h2_atoms(l=0.735):
    return [Atom("H", np.zeros(3)),
            Atom("H", np.array([0.0, 0.0, l * ANGSTROM_TO_BOHR]))]


@lru_cache(maxsize=None)
def h2_scf():
    return run_rhf(h2_atoms())


class TestBasis:
    def test_contracted_normalization(self):
        basis = build_basis([Atom("O", np.zeros(3))])
        s = overlap_matrix(basis)
        np.testing.assert_allclose(np.diag(s), 1.0, atol=1e-10)

    def test_ao_counts(self):
        assert len(build_basis([Atom("H", np.zeros(3))])) == 1
        assert len(build_basis([Atom("O", np.zeros(3))])) == 5
        assert len(build_basis([Atom("Li", np.zeros(3))])) == 5

    def test_unknown_element(self):
        with pytest.raises(ValueError):
            build_basis([Atom("Xx", np.zeros(3))])

    def test_nuclear_repulsion_h2(self):
        atoms = h2_atoms(1.0)
        assert nuclear_repulsion(atoms) == pytest.approx(1.0 / ANGSTROM_TO_BOHR)


class TestIntegrals:
    def test_boys_zero_argument(self):
        for n in range(5):
            assert boys(n, 0.0) == pytest.approx(1.0 / (2 * n + 1))

    def test_boys_f0_closed_form(self):
        for t in [0.1, 1.0, 5.0, 20.0]:
            expected = 0.5 * math.sqrt(math.pi / t) * math.erf(math.sqrt(t))
            assert boys(0, t) == pytest.approx(expected, rel=1e-10)

    def test_boys_downward_recursion(self):
        # F_{n+1}(t) = ((2n+1) F_n(t) - exp(-t)) / (2t)
        t = 2.5
        for n in range(4):
            expected = ((2 * n + 1) * boys(n, t) - math.exp(-t)) / (2 * t)
            assert boys(n + 1, t) == pytest.approx(expected, rel=1e-9)

    def test_hermite_coefficient_gaussian_product(self):
        # E_0^{00} is the Gaussian product prefactor
        a, b, d = 0.8, 1.3, 0.7
        q = a * b / (a + b)
        assert hermite_coefficient(0, 0, 0, d, a, b) == pytest.approx(
            math.exp(-q * d * d))
        assert hermite_coefficient(0, 0, 1, d, a, b) == 0.0

    def test_overlap_properties(self):
        basis = build_basis(h2_atoms())
        s = overlap_matrix(basis)
        np.testing.assert_allclose(s, s.T, atol=1e-12)
        assert np.linalg.eigvalsh(s).min() > 0

    def test_kinetic_positive(self):
        basis = build_basis(h2_atoms())
        t = kinetic_matrix(basis)
        assert np.linalg.eigvalsh(t).min() > 0

    def test_nuclear_attraction_negative_diagonal(self):
        atoms = h2_atoms()
        v = nuclear_attraction_matrix(build_basis(atoms), atoms)
        assert (np.diag(v) < 0).all()

    def test_eri_eightfold_symmetry(self):
        basis = build_basis([Atom("Li", np.zeros(3))])[:3]
        eri = eri_tensor(basis)
        n = len(basis)
        rng = np.random.default_rng(0)
        for _ in range(20):
            p, q, r, s = rng.integers(0, n, size=4)
            value = eri[p, q, r, s]
            for perm in [(q, p, r, s), (p, q, s, r), (q, p, s, r),
                         (r, s, p, q), (s, r, p, q), (r, s, q, p)]:
                assert eri[perm] == pytest.approx(value, abs=1e-10)

    def test_translation_invariance(self):
        shift = np.array([0.3, -1.2, 2.0])
        basis_a = build_basis(h2_atoms())
        shifted = [Atom(a.symbol, a.position + shift) for a in h2_atoms()]
        basis_b = build_basis(shifted)
        np.testing.assert_allclose(overlap_matrix(basis_a),
                                   overlap_matrix(basis_b), atol=1e-10)
        np.testing.assert_allclose(eri_tensor(basis_a), eri_tensor(basis_b),
                                   atol=1e-9)


class TestSCF:
    def test_h2_reference_energy(self):
        # RHF/STO-3G at 0.735 A: about -1.117 hartree
        assert h2_scf().energy == pytest.approx(-1.117, abs=2e-3)
        assert h2_scf().converged

    def test_h2o_reference_energy(self):
        from repro.chem.molecules import water_geometry

        scf = run_rhf(water_geometry(1.0))
        assert scf.energy == pytest.approx(-74.96, abs=0.02)

    def test_lih_reference_energy(self):
        from repro.chem.molecules import lithium_hydride_geometry

        scf = run_rhf(lithium_hydride_geometry(1.5))
        assert scf.energy == pytest.approx(-7.863, abs=5e-3)

    def test_odd_electrons_rejected(self):
        with pytest.raises(ValueError):
            run_rhf(h2_atoms(), num_electrons=3)

    def test_orbital_orthonormality(self):
        scf = h2_scf()
        identity = scf.mo_coeff.T @ scf.overlap @ scf.mo_coeff
        np.testing.assert_allclose(identity, np.eye(2), atol=1e-9)


class TestJordanWigner:
    def test_ladder_anticommutation(self):
        """{a_i, a†_j} = delta_ij and {a_i, a_j} = 0 as dense matrices."""
        n = 3
        ops = {}
        for j in range(n):
            for dag in (False, True):
                poly = jordan_wigner_ladder(j, n, creation=dag)
                mat = np.zeros((2 ** n, 2 ** n), dtype=complex)
                for (xb, zb), c in poly.terms.items():
                    from repro.paulis import PauliString

                    p = PauliString(np.frombuffer(xb, dtype=bool),
                                    np.frombuffer(zb, dtype=bool))
                    mat += c * p.to_matrix()
                ops[(j, dag)] = mat
        for i in range(n):
            for j in range(n):
                anti = (ops[(i, False)] @ ops[(j, True)]
                        + ops[(j, True)] @ ops[(i, False)])
                expected = np.eye(2 ** n) if i == j else np.zeros((2 ** n,) * 2)
                np.testing.assert_allclose(anti, expected, atol=1e-12)
                anti2 = (ops[(i, False)] @ ops[(j, False)]
                         + ops[(j, False)] @ ops[(i, False)])
                np.testing.assert_allclose(anti2, 0 * anti2, atol=1e-12)

    def test_number_operator(self):
        """a†_j a_j maps to (I - Z_j) / 2."""
        n = 2
        poly = jordan_wigner_ladder(0, n, True).product(
            jordan_wigner_ladder(0, n, False))
        h = poly.to_pauli_sum()
        labels = {p.to_label(): c for c, p in h.terms()}
        assert labels == pytest.approx({"II": 0.5, "ZI": -0.5})

    def test_h2_fci_energy(self):
        scf = h2_scf()
        core, h, g = active_space_tensors(scf, ActiveSpace(0, 2, 2))
        ferm = spin_orbital_hamiltonian(core, h, g)
        jw = ferm.to_qubits_jordan_wigner()
        # literature FCI/STO-3G at 0.735 A
        assert ground_state_energy(jw) == pytest.approx(-1.1373, abs=2e-3)
        # correlation energy is negative
        assert ground_state_energy(jw) < scf.energy


class TestParityMapping:
    def test_number_operator_becomes_zz(self):
        n = 3
        poly = jordan_wigner_ladder(1, n, True).product(
            jordan_wigner_ladder(1, n, False))
        parity = jw_to_parity(poly.to_pauli_sum())
        labels = {p.to_label(): c for c, p in parity.terms()}
        assert labels == pytest.approx({"III": 0.5, "ZZI": -0.5})

    def test_taper_validation(self):
        h = PauliSum.from_terms([(1.0, "XZ")])
        with pytest.raises(ValueError):
            taper_qubits(h, [0], [1])  # X on tapered qubit
        h = PauliSum.from_terms([(1.0, "ZZ")])
        with pytest.raises(ValueError):
            taper_qubits(h, [0], [2])  # invalid eigenvalue

    def test_taper_substitutes_eigenvalue(self):
        h = PauliSum.from_terms([(2.0, "ZZ"), (1.0, "IZ"), (0.5, "ZI")])
        reduced = taper_qubits(h, [0], [-1])
        labels = {p.to_label(): c for c, p in reduced.terms()}
        assert labels == pytest.approx({"Z": 2.0 * -1 + 1.0, "I": -0.5})

    def test_reduction_preserves_sector_ground_energy(self):
        """Parity + 2q reduction must reproduce the (N_alpha, N_beta)
        sector's exact ground energy of the JW Hamiltonian."""
        scf = h2_scf()
        core, h, g = active_space_tensors(scf, ActiveSpace(0, 2, 2))
        ferm = spin_orbital_hamiltonian(core, h, g)
        jw = ferm.to_qubits_jordan_wigner()
        reduced = parity_two_qubit_reduction(jw, 1, 1)
        assert reduced.num_qubits == jw.num_qubits - 2
        # dense sector scan of the JW Hamiltonian (4 modes: a0 a1 b0 b1)
        matrix = jw.to_matrix()
        dim = matrix.shape[0]
        energies = []
        for state in range(dim):
            bits = [(state >> (jw.num_qubits - 1 - k)) & 1
                    for k in range(jw.num_qubits)]
            if sum(bits[:2]) == 1 and sum(bits[2:]) == 1:
                energies.append(state)
        sector = matrix[np.ix_(energies, energies)]
        sector_min = np.linalg.eigvalsh(sector).min()
        assert ground_state_energy(reduced) == pytest.approx(
            float(sector_min), abs=1e-9)


@pytest.mark.slow
class TestMolecularDriver:
    def test_lih_matches_paper_term_count(self):
        prob = molecular_hamiltonian("LiH", 1.5)
        assert prob.hamiltonian.num_qubits == 10
        assert prob.hamiltonian.num_terms == 631  # the paper's count

    def test_h6_matches_paper_term_count(self):
        prob = molecular_hamiltonian("H6", 1.0)
        assert prob.hamiltonian.num_qubits == 10
        assert prob.hamiltonian.num_terms == 919  # the paper's count

    def test_h2o_builds_ten_qubits(self):
        prob = molecular_hamiltonian("H2O", 1.0)
        assert prob.hamiltonian.num_qubits == 10
        # hundreds of terms (paper: 367; thresholds differ, see DESIGN.md)
        assert 300 <= prob.hamiltonian.num_terms <= 700

    def test_correlation_energy_negative(self):
        for name, l in [("LiH", 1.5), ("H6", 1.0)]:
            prob = molecular_hamiltonian(name, l)
            e0 = ground_state_energy(prob.hamiltonian)
            assert e0 < prob.hf_energy

    def test_stretched_geometries_converge(self):
        for name, l in [("H6", 3.0), ("LiH", 4.5)]:
            prob = molecular_hamiltonian(name, l)
            assert prob.scf.converged

    def test_unknown_molecule(self):
        with pytest.raises(ValueError):
            molecular_hamiltonian("He2", 1.0)


class TestIntegralInvariances:
    def test_rotation_invariance_of_energy(self):
        """RHF energy is invariant under rigid rotation of the geometry --
        a strong end-to-end check of the p-orbital integral code."""
        from repro.chem.molecules import water_geometry

        atoms = water_geometry(1.0)
        theta = 0.7
        rot = np.array([[np.cos(theta), -np.sin(theta), 0],
                        [np.sin(theta), np.cos(theta), 0],
                        [0, 0, 1.0]])
        rotated = [Atom(a.symbol, rot @ a.position) for a in atoms]
        e_orig = run_rhf(atoms).energy
        e_rot = run_rhf(rotated).energy
        assert e_rot == pytest.approx(e_orig, abs=1e-8)

    def test_h2_dissociation_monotone_tail(self):
        """RHF H2 energy rises monotonically at large separations."""
        energies = [run_rhf(h2_atoms(l)).energy for l in (2.0, 3.0, 4.0)]
        assert energies[0] < energies[1] < energies[2]

    def test_h6_vs_3h2_interaction(self):
        """A compact H6 chain is not just three H2 molecules: its RHF
        energy differs from 3x the isolated-H2 energy."""
        from repro.chem.molecules import hydrogen_chain_geometry

        chain = run_rhf(hydrogen_chain_geometry(6, 1.0)).energy
        single = run_rhf(h2_atoms(1.0)).energy
        assert abs(chain - 3 * single) > 0.05
