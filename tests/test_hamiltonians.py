"""Tests for spin models, exact diagonalization, and the benchmark registry."""

import numpy as np
import pytest

from repro.hamiltonians import (
    PAPER_COUPLINGS,
    ground_state,
    ground_state_energy,
    ising_model,
    pauli_sum_to_sparse,
    pauli_to_sparse,
    paper_benchmarks,
    physics_benchmarks,
    xxz_model,
)
from repro.hamiltonians.registry import get_benchmark
from repro.paulis import PauliString, PauliSum


class TestSpinModels:
    def test_ising_term_count(self):
        h = ising_model(5, 0.5)
        # 4 XX couplings + 5 Z fields
        assert h.num_terms == 9

    def test_ising_structure(self):
        h = ising_model(3, 0.25)
        labels = {p.to_label(): c for c, p in h.terms()}
        assert labels == {"XXI": 0.25, "IXX": 0.25,
                          "ZII": 1.0, "IZI": 1.0, "IIZ": 1.0}

    def test_xxz_term_count(self):
        h = xxz_model(4, 1.0)
        assert h.num_terms == 3 * 3

    def test_xxz_couplings(self):
        h = xxz_model(3, 0.5)
        labels = {p.to_label(): c for c, p in h.terms()}
        assert labels["XXI"] == 0.5 and labels["YYI"] == 0.5
        assert labels["ZZI"] == 1.0

    def test_chain_too_short(self):
        with pytest.raises(ValueError):
            ising_model(1, 0.5)
        with pytest.raises(ValueError):
            xxz_model(1, 0.5)

    def test_ising_known_2site_energy(self):
        # H = J XX + Z1 + Z2; for J=1: eigenvalues of
        # [[2,0,0,1],[0,0,1,0],[0,1,0,0],[1,0,0,-2]] -> min = -sqrt(5)
        h = ising_model(2, 1.0)
        assert ground_state_energy(h) == pytest.approx(-np.sqrt(5))

    def test_xxz_heisenberg_point_2site(self):
        # J=1 gives the isotropic Heisenberg dimer: E0 = -3 (singlet)
        h = xxz_model(2, 1.0)
        assert ground_state_energy(h) == pytest.approx(-3.0)


class TestExact:
    def test_pauli_to_sparse_matches_dense(self):
        rng = np.random.default_rng(0)
        from repro.paulis import random_pauli

        for _ in range(10):
            p = random_pauli(4, rng)
            np.testing.assert_allclose(pauli_to_sparse(p).toarray(),
                                       p.to_matrix(), atol=1e-12)

    def test_sum_to_sparse_matches_dense(self):
        h = PauliSum.from_terms([(0.5, "XY"), (1.5, "ZZ"), (-0.7, "IX")])
        np.testing.assert_allclose(pauli_sum_to_sparse(h).toarray(),
                                   h.to_matrix(), atol=1e-12)

    def test_ground_state_vector(self):
        h = ising_model(6, 0.5)
        energy, vector = ground_state(h)
        matrix = pauli_sum_to_sparse(h)
        np.testing.assert_allclose(matrix @ vector, energy * vector, atol=1e-8)

    def test_large_chain_uses_sparse_path(self):
        h = ising_model(12, 0.25)
        e_sparse = ground_state_energy(h)
        # weak coupling: ground state near all-|1> (Z eigenvalue -1 per site)
        assert e_sparse < -11.0

    def test_variational_bound(self):
        """E0 lower-bounds every state's energy, in particular <0|H|0>."""
        for coupling in PAPER_COUPLINGS:
            h = xxz_model(6, coupling)
            assert ground_state_energy(h) <= h.expectation_all_zeros() + 1e-12


class TestRegistry:
    def test_physics_suite(self):
        suite = physics_benchmarks(7)
        assert len(suite) == 6
        assert all(b.num_qubits == 7 for b in suite)
        names = [b.name for b in suite]
        assert "ising_J0.25" in names and "xxz_J1.00" in names

    def test_full_suite_size(self):
        suite = paper_benchmarks(10)
        assert len(suite) == 12

    def test_build_and_cache(self):
        bench = get_benchmark("ising_J0.50", 6)
        h1 = bench.hamiltonian()
        h2 = bench.hamiltonian()
        assert h1 is h2  # cached
        assert h1.num_qubits == 6

    def test_unknown_benchmark(self):
        with pytest.raises(KeyError):
            get_benchmark("h2o_wrong")

    def test_cache_distinguishes_widths(self):
        h6 = get_benchmark("ising_J0.50", 6).hamiltonian()
        h8 = get_benchmark("ising_J0.50", 8).hamiltonian()
        assert h6.num_qubits == 6 and h8.num_qubits == 8


class TestMaxCut:
    def test_triangle_ground_energy(self):
        import networkx as nx
        from repro.hamiltonians import maxcut_hamiltonian

        graph = nx.cycle_graph(3)
        h = maxcut_hamiltonian(graph)
        # best cut of a triangle is 2 -> ground energy -2
        assert ground_state_energy(h) == pytest.approx(-2.0)

    def test_ground_energy_equals_negative_best_cut(self):
        from repro.hamiltonians import (best_cut_bruteforce,
                                        maxcut_hamiltonian,
                                        random_maxcut_instance)

        rng = np.random.default_rng(0)
        for _ in range(5):
            graph = random_maxcut_instance(5, 0.6, rng, weighted=True)
            h = maxcut_hamiltonian(graph)
            assert ground_state_energy(h) == pytest.approx(
                -best_cut_bruteforce(graph), abs=1e-9)

    def test_diagonal_structure(self):
        import networkx as nx
        from repro.hamiltonians import maxcut_hamiltonian

        h = maxcut_hamiltonian(nx.path_graph(4))
        assert h.table.z_type_mask().all()

    def test_validation(self):
        import networkx as nx
        from repro.hamiltonians import maxcut_hamiltonian

        with pytest.raises(ValueError):
            maxcut_hamiltonian(nx.empty_graph(3))

    def test_cut_value(self):
        import networkx as nx
        from repro.hamiltonians import cut_value

        graph = nx.path_graph(3)
        assert cut_value(graph, {0: 0, 1: 1, 2: 0}) == 2.0
        assert cut_value(graph, {0: 0, 1: 0, 2: 0}) == 0.0

    def test_clapton_runs_on_maxcut(self):
        """Clapton treats MaxCut like any other VQE problem."""
        from repro.core import VQEProblem, clapton
        from repro.hamiltonians import maxcut_hamiltonian, random_maxcut_instance
        from repro.noise import NoiseModel
        from repro.optim import EngineConfig

        rng = np.random.default_rng(3)
        graph = random_maxcut_instance(4, 0.7, rng)
        h = maxcut_hamiltonian(graph)
        nm = NoiseModel.uniform(4, depol_1q=1e-3, depol_2q=1e-2,
                                readout=0.03, t1=60e-6)
        problem = VQEProblem.logical(h, noise_model=nm)
        config = EngineConfig(num_instances=2, generations_per_round=10,
                              top_k=4, population_size=16, retry_rounds=0,
                              seed=0)
        result = clapton(problem, config=config)
        # MaxCut ground states are stabilizer states: the noiseless part of
        # the loss can reach E0 exactly
        e0 = ground_state_energy(h)
        from repro.core import ClaptonLoss

        _, l0 = ClaptonLoss(problem).components(result.genome)
        assert l0 == pytest.approx(e0, abs=1e-9)
