"""Tests for noise models, Pauli twirling, and the Clifford L_N evaluator.

The central correctness property: for Pauli-channel-only noise, the
deterministic Clifford evaluator must agree *exactly* with full density-
matrix evolution, and statistically with stim-style Monte-Carlo sampling.
"""

import math

import numpy as np
import pytest

from repro.circuits import Circuit, ansatz_skeleton
from repro.densesim import channels, evolve_with_noise, noisy_energy
from repro.densesim.evaluator import measurement_attenuations
from repro.noise import (
    CliffordNoiseModel,
    NoiseModel,
    pauli_channel_attenuation,
    pauli_twirl_probabilities,
    sample_noisy_energy,
    twirled_relaxation_probabilities,
)
from repro.paulis import PauliSum


def clifford_circuit(n, depth, rng):
    circ = Circuit(n)
    names_1q = ["h", "s", "x", "sx"]
    for _ in range(depth):
        if rng.random() < 0.5 and n >= 2:
            a, b = rng.choice(n, size=2, replace=False)
            circ.append(["cx", "cz", "swap"][rng.integers(0, 3)], [a, b])
        else:
            circ.append(names_1q[rng.integers(0, 4)], [rng.integers(0, n)])
    return circ


def random_hamiltonian(n, m, rng):
    terms = []
    for _ in range(m):
        label = "".join(rng.choice(list("IXYZ"), size=n))
        terms.append((float(rng.normal()), label))
    return PauliSum.from_terms(terms)


class TestNoiseModel:
    def test_uniform_construction(self):
        nm = NoiseModel.uniform(3, depol_1q=1e-3, depol_2q=1e-2,
                                readout=0.02, t1=50e-6)
        np.testing.assert_allclose(nm.depol_1q, 1e-3)
        assert nm.two_qubit_depol(0, 2) == 1e-2
        np.testing.assert_allclose(nm.symmetric_readout_flip(), 0.02)
        np.testing.assert_allclose(nm.readout_z_attenuation(), 0.96)
        np.testing.assert_allclose(nm.t2, 50e-6)

    def test_pairwise_overrides(self):
        nm = NoiseModel(num_qubits=3, depol_1q=1e-3, depol_2q_default=1e-2,
                        depol_2q={(2, 0): 0.05})
        assert nm.two_qubit_depol(0, 2) == 0.05
        assert nm.two_qubit_depol(2, 0) == 0.05
        assert nm.two_qubit_depol(0, 1) == 1e-2

    def test_t2_clamped(self):
        nm = NoiseModel(num_qubits=1, depol_1q=0.0, depol_2q_default=0.0,
                        t1=np.array([10e-6]), t2=np.array([50e-6]))
        assert nm.t2[0] == pytest.approx(20e-6)

    def test_noiseless(self):
        nm = NoiseModel.noiseless(2)
        circ = Circuit(2)
        circ.cx(0, 1)
        assert nm.kraus_after(circ.instructions[0]) == []

    def test_kraus_after_includes_relaxation(self):
        nm = NoiseModel.uniform(2, depol_1q=1e-3, depol_2q=1e-2, t1=50e-6)
        circ = Circuit(2)
        circ.cx(0, 1)
        out = nm.kraus_after(circ.instructions[0])
        assert len(out) == 3  # 2q depol + relaxation on both qubits
        nm2 = nm.with_overrides(include_relaxation=False)
        assert len(nm2.kraus_after(circ.instructions[0])) == 1


class TestTwirling:
    def test_depolarizing_twirl_is_itself(self):
        p = 0.12
        probs = pauli_twirl_probabilities(channels.depolarizing_kraus(p))
        np.testing.assert_allclose(probs, [1 - p, p / 3, p / 3, p / 3],
                                   atol=1e-12)

    def test_amplitude_damping_twirl_closed_form(self):
        gamma = 0.3
        probs = pauli_twirl_probabilities(channels.amplitude_damping_kraus(gamma))
        root = math.sqrt(1 - gamma)
        expected = [((1 + root) / 2) ** 2, gamma / 4, gamma / 4,
                    ((1 - root) / 2) ** 2]
        np.testing.assert_allclose(probs, expected, atol=1e-12)

    def test_twirled_relaxation_probabilities_sum_to_one(self):
        probs = twirled_relaxation_probabilities(1e-7, 5e-5, 7e-5)
        assert probs.sum() == pytest.approx(1.0)
        assert (probs >= 0).all()

    def test_attenuation_factors(self):
        p = 0.3
        probs = np.array([1 - p, p / 3, p / 3, p / 3])
        att = pauli_channel_attenuation(probs)
        np.testing.assert_allclose(att, [1.0] + [1 - 4 * p / 3] * 3, atol=1e-12)

    def test_twirl_matches_dense_channel_on_diagonal_observables(self):
        """Twirled channel and original channel agree on Pauli expectation
        *attenuation* when the input state is a Pauli eigenstate mixture."""
        gamma = 0.25
        probs = pauli_twirl_probabilities(channels.amplitude_damping_kraus(gamma))
        att_z = pauli_channel_attenuation(probs)[3]
        # twirled channel scales <Z>; original channel maps <Z> -> gamma + (1-gamma)<Z>
        # the attenuation (linear part) must match: 1 - gamma ... twirl gives
        # 1 - 2*(p_x + p_y) = 1 - gamma
        assert att_z == pytest.approx(1 - gamma)


class TestCliffordNoiseModel:
    def test_noiseless_reduces_to_exact(self):
        rng = np.random.default_rng(0)
        n = 3
        circ = clifford_circuit(n, 12, rng)
        h = random_hamiltonian(n, 8, rng)
        nm = NoiseModel.noiseless(n)
        model = CliffordNoiseModel(nm)
        from repro.stabilizer import clifford_state_expectation

        assert model.noisy_zero_state_energy(circ, h) == pytest.approx(
            clifford_state_expectation(circ, h), abs=1e-9)

    @pytest.mark.parametrize("seed", [1, 2, 3, 4])
    def test_matches_density_matrix_exactly(self, seed):
        """Pauli-channel-only noise: analytic attenuation == exact evolution."""
        rng = np.random.default_rng(seed)
        n = 3
        circ = clifford_circuit(n, 10, rng)
        h = random_hamiltonian(n, 10, rng)
        nm = NoiseModel.uniform(n, depol_1q=0.02, depol_2q=0.05,
                                readout=0.03, t1=None)
        model = CliffordNoiseModel(nm)
        analytic = model.noisy_zero_state_energy(circ, h)
        dense = noisy_energy(circ, h, nm)
        assert analytic == pytest.approx(dense, abs=1e-9)

    def test_matches_density_matrix_asymmetric_readout(self):
        rng = np.random.default_rng(9)
        n = 2
        circ = clifford_circuit(n, 8, rng)
        h = random_hamiltonian(n, 6, rng)
        nm = NoiseModel(num_qubits=n, depol_1q=0.01, depol_2q_default=0.03,
                        readout_p01=np.array([0.02, 0.05]),
                        readout_p10=np.array([0.04, 0.01]), t1=None)
        analytic = CliffordNoiseModel(nm).noisy_zero_state_energy(circ, h)
        dense = noisy_energy(circ, h, nm)
        assert analytic == pytest.approx(dense, abs=1e-9)

    def test_sampling_agrees_statistically(self):
        rng = np.random.default_rng(11)
        n = 3
        circ = ansatz_skeleton(n)
        h = PauliSum.from_terms([(1.0, "ZZI"), (0.7, "IZZ"), (0.5, "XXI"),
                                 (0.3, "ZIZ")])
        nm = NoiseModel.uniform(n, depol_1q=0.05, depol_2q=0.1,
                                readout=0.02, t1=None)
        model = CliffordNoiseModel(nm)
        analytic = model.noisy_zero_state_energy(circ, h)
        sampled = sample_noisy_energy(circ, h, nm, shots=3000, rng=rng)
        assert sampled == pytest.approx(analytic, abs=0.05)

    def test_attenuation_lowers_magnitude(self):
        """Noise can only shrink each term's contribution at theta = 0."""
        n = 4
        circ = ansatz_skeleton(n)
        h = PauliSum.from_terms([(1.0, "ZZZZ")])
        noisy_values = []
        for p in [0.0, 0.01, 0.05, 0.1]:
            nm = NoiseModel.uniform(n, depol_1q=p, depol_2q=10 * p,
                                    readout=0.0, t1=None)
            noisy_values.append(
                CliffordNoiseModel(nm).noisy_zero_state_energy(circ, h))
        assert noisy_values[0] == pytest.approx(1.0)
        assert all(a > b for a, b in zip(noisy_values, noisy_values[1:]))

    def test_twirled_relaxation_prefers_ground_state(self):
        """With twirled relaxation on, <Z> of an excited qubit is damped
        toward the decayed value and the evaluator runs."""
        n = 2
        circ = Circuit(n)
        circ.x(0)
        h = PauliSum.from_terms([(1.0, "ZI")])
        nm = NoiseModel.uniform(n, depol_1q=0.0, depol_2q=0.0, readout=0.0,
                                t1=50e-6, t2=50e-6)
        model = CliffordNoiseModel(nm, include_twirled_relaxation=True)
        value = model.noisy_zero_state_energy(circ, h)
        gamma = 1 - math.exp(-nm.gate_time_1q / 50e-6)
        assert value == pytest.approx(-(1 - gamma), rel=1e-6)

    def test_basis_prep_error_toggle(self):
        n = 2
        circ = Circuit(n)
        h = PauliSum.from_terms([(1.0, "XX")])
        nm = NoiseModel.uniform(n, depol_1q=0.03, depol_2q=0.0, readout=0.0,
                                t1=None)
        with_prep = CliffordNoiseModel(nm, include_basis_prep_error=True)
        without = CliffordNoiseModel(nm, include_basis_prep_error=False)
        # empty circuit: X measurement on |0> gives 0 either way; use factors
        f_with = with_prep.measurement_attenuations(h.table)
        f_without = without.measurement_attenuations(h.table)
        assert f_with[0] == pytest.approx((1 - 0.04) ** 2)
        assert f_without[0] == pytest.approx(1.0)


class TestFullModelEvaluator:
    def test_relaxation_breaks_clifford_model(self):
        """Amplitude damping (non-Pauli) must create a model-device gap for
        excited states -- the effect Clapton exploits."""
        n = 2
        circ = Circuit(n)
        circ.x(0).x(1)
        h = PauliSum.from_terms([(1.0, "ZZ")])
        nm = NoiseModel.uniform(n, depol_1q=0.0, depol_2q=0.0, readout=0.0,
                                t1=20e-6)
        clifford = CliffordNoiseModel(nm).noisy_zero_state_energy(circ, h)
        full = noisy_energy(circ, h, nm)
        assert clifford == pytest.approx(1.0)  # Clifford model: no decay
        assert full < 1.0  # device model: both qubits decay

    def test_measurement_attenuations_shared_with_clifford_model(self):
        n = 3
        rng = np.random.default_rng(4)
        h = random_hamiltonian(n, 8, rng)
        nm = NoiseModel.uniform(n, depol_1q=2e-3, depol_2q=2e-2, readout=0.04)
        from_full = measurement_attenuations(h, nm)
        from_clifford = CliffordNoiseModel(nm).measurement_attenuations(h.table)
        np.testing.assert_allclose(from_full, from_clifford)

    def test_evolve_register_check(self):
        nm = NoiseModel.uniform(2, depol_1q=0.0, depol_2q=0.0)
        with pytest.raises(ValueError):
            evolve_with_noise(Circuit(3), nm)


class TestClosedFormChannels:
    """The closed-form channel applications must match their Kraus sets."""

    @pytest.mark.parametrize("num_qubits,qubits", [(1, (0,)), (3, (1,)),
                                                   (2, (0, 1)), (3, (2, 0))])
    def test_depolarizing_closed_form(self, num_qubits, qubits):
        from repro.densesim import DensityMatrixSimulator

        rng = np.random.default_rng(0)
        circ = clifford_circuit(num_qubits, 6, rng)
        a = DensityMatrixSimulator(num_qubits)
        b = DensityMatrixSimulator(num_qubits)
        a.apply_circuit(circ)
        b.apply_circuit(circ)
        p = 0.07
        a.apply_kraus(channels.depolarizing_kraus(p, len(qubits)), qubits)
        b.apply_depolarizing(p, qubits)
        np.testing.assert_allclose(a.rho, b.rho, atol=1e-12)

    def test_relaxation_closed_form(self):
        from repro.densesim import DensityMatrixSimulator

        rng = np.random.default_rng(1)
        for qubit in range(3):
            circ = clifford_circuit(3, 8, rng)
            a = DensityMatrixSimulator(3)
            b = DensityMatrixSimulator(3)
            a.apply_circuit(circ)
            b.apply_circuit(circ)
            duration, t1, t2 = 3e-7, 5e-5, 6e-5
            a.apply_kraus(channels.thermal_relaxation_kraus(duration, t1, t2),
                          (qubit,))
            gamma = 1 - math.exp(-duration / t1)
            eta = math.exp(-duration / t2)
            b.apply_relaxation(gamma, eta, qubit)
            np.testing.assert_allclose(a.rho, b.rho, atol=1e-12)

    def test_channel_spec_kraus_roundtrip(self):
        """ChannelSpec.kraus_operators must be trace preserving."""
        from repro.noise.model import ChannelSpec

        for spec in [ChannelSpec("depol", (0, 1), (0.03,)),
                     ChannelSpec("relax", (0,), (0.02, 0.97)),
                     ChannelSpec("unitary_zz", (0, 1), (0.05,))]:
            channels.validate_kraus(spec.kraus_operators())


class TestIdleRelaxation:
    def test_idle_qubit_decays(self):
        """With idle scheduling on, a spectator excited qubit decays while
        a long gate sequence runs elsewhere."""
        from repro.densesim import evolve_with_noise
        from repro.paulis import PauliSum

        n = 3
        circ = Circuit(n)
        circ.x(2)                    # excite the spectator
        for _ in range(30):
            circ.cx(0, 1)            # busy work on the other qubits
        nm = NoiseModel.uniform(n, depol_1q=0.0, depol_2q=0.0, readout=0.0,
                                t1=20e-6)
        h = PauliSum.from_terms([(1.0, "IIZ")])
        off = evolve_with_noise(circ, nm).expectation_sum(h)
        on = evolve_with_noise(
            circ, nm.with_overrides(include_idle_relaxation=True)
        ).expectation_sum(h)
        # without idle modeling the spectator only decays during its own X
        # gate; with it, it decays for the whole CX sequence
        assert on > off  # Z expectation decays from -1 toward +1
        assert on - off > 0.05

    def test_flag_off_reproduces_previous_behaviour(self):
        from repro.densesim import evolve_with_noise

        rng = np.random.default_rng(0)
        circ = clifford_circuit(3, 10, rng)
        nm = NoiseModel.uniform(3, depol_1q=1e-3, depol_2q=1e-2,
                                readout=0.01, t1=60e-6)
        a = evolve_with_noise(circ, nm).rho
        b = evolve_with_noise(
            circ, nm.with_overrides(include_idle_relaxation=False)).rho
        np.testing.assert_allclose(a, b, atol=1e-15)

    def test_relaxation_spec_none_cases(self):
        nm = NoiseModel.uniform(2, depol_1q=0.0, depol_2q=0.0, t1=50e-6)
        assert nm.relaxation_spec(0, 0.0) is None
        assert nm.relaxation_spec(0, -1.0) is None
        spec = nm.relaxation_spec(0, 1e-7)
        assert spec.kind == "relax"
        nm2 = NoiseModel.noiseless(2)
        assert nm2.relaxation_spec(0, 1e-7) is None


class TestLogicalEraModel:
    def test_logical_constructor(self):
        nm = NoiseModel.logical(3, flip_x=1e-3, flip_z=2e-3)
        assert nm.logical_flip_probs == (1e-3, 0.0, 2e-3)
        assert nm.t1 is None
        assert nm.depol_1q.max() == 0.0

    def test_clifford_matches_density_matrix(self):
        """Pauli-flip noise is a Pauli channel: the Clifford evaluator must
        agree exactly with dense evolution."""
        rng = np.random.default_rng(31)
        n = 3
        circ = clifford_circuit(n, 10, rng)
        h = random_hamiltonian(n, 8, rng)
        nm = NoiseModel.logical(n, flip_x=5e-3, flip_z=8e-3, readout=2e-3)
        analytic = CliffordNoiseModel(nm).noisy_zero_state_energy(circ, h)
        dense = noisy_energy(circ, h, nm)
        assert analytic == pytest.approx(dense, abs=1e-9)

    def test_x_flip_only_preserves_x_observables(self):
        """A pure X-flip channel leaves X observables unattenuated but
        damps Z observables."""
        n = 1
        circ = Circuit(n)
        circ.h(0)
        nm = NoiseModel.logical(n, flip_x=0.1, flip_z=0.0, readout=0.0)
        hx = PauliSum.from_terms([(1.0, "X")])
        hz = PauliSum.from_terms([(1.0, "Z")])
        model = CliffordNoiseModel(nm, include_basis_prep_error=False)
        assert model.noisy_zero_state_energy(circ, hx) == pytest.approx(1.0)
        circ_z = Circuit(n)
        circ_z.x(0)
        value = model.noisy_zero_state_energy(circ_z, hz)
        assert value == pytest.approx(-(1 - 2 * 0.1))
